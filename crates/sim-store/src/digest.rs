//! Content digests and record checksums — the store's two hash layers.
//!
//! [`Digest`] is a 256-bit content address built from four tweaked
//! FNV-1a-64 lanes run over the same byte stream. Each lane starts from
//! a distinct offset basis and folds the lane index into every input
//! byte, so the lanes observe decorrelated streams and a collision must
//! defeat all four at once. This is *not* a cryptographic hash: the
//! store addresses results the local simulator produced itself, so the
//! threat model is accidental collision, not an adversary forging
//! preimages.
//!
//! [`crc32`] is the classic reflected CRC-32 (poly `0xEDB88320`), used
//! to checksum individual JSONL records so a torn final line — the
//! normal crash artifact of an append-only log — is detected and
//! truncated instead of trusted.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
/// Per-lane tweaks xored into the offset basis so the four lanes never
/// start from the same state (values are the first 64 fractional bits of
/// sqrt(2), sqrt(3), sqrt(5), sqrt(7) — nothing-up-my-sleeve constants).
const LANE_TWEAKS: [u64; 4] = [
    0x6A09_E667_F3BC_C908,
    0xBB67_AE85_84CA_A73B,
    0x3C6E_F372_FE94_F82B,
    0xA54F_F53A_5F1D_36F1,
];

/// A 256-bit content address over a canonical `(verb, seed, config)`
/// preimage. Ordered so it can key a `BTreeMap` directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest([u64; 4]);

impl Digest {
    /// Digests a byte string: four tweaked FNV-1a-64 lanes, each
    /// finished with a splitmix-style avalanche so every output bit
    /// depends on every input byte.
    pub fn of_bytes(bytes: &[u8]) -> Digest {
        let mut lanes = [0u64; 4];
        for (i, lane) in lanes.iter_mut().enumerate() {
            let tweak = LANE_TWEAKS.get(i).copied().unwrap_or(0);
            let mut h = FNV_OFFSET ^ tweak;
            for &b in bytes {
                h ^= u64::from(b).wrapping_add((i as u64) << 8);
                h = h.wrapping_mul(FNV_PRIME);
            }
            *lane = avalanche(h);
        }
        Digest(lanes)
    }

    /// Digests a UTF-8 preimage string.
    pub fn of_str(s: &str) -> Digest {
        Digest::of_bytes(s.as_bytes())
    }

    /// The digest as 64 lowercase hex characters.
    pub fn hex(&self) -> String {
        let mut out = String::with_capacity(64);
        for lane in self.0 {
            for shift in (0..16).rev() {
                let nibble = (lane >> (shift * 4)) & 0xF;
                out.push(char::from_digit(nibble as u32, 16).unwrap_or('0'));
            }
        }
        out
    }

    /// Parses the 64-hex-character form back into a digest.
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != 64 || !s.is_ascii() {
            return None;
        }
        let mut lanes = [0u64; 4];
        for (i, lane) in lanes.iter_mut().enumerate() {
            let chunk = s.get(i * 16..(i + 1) * 16)?;
            *lane = u64::from_str_radix(chunk, 16).ok()?;
        }
        Some(Digest(lanes))
    }

    /// Deterministic shard assignment: the first lane reduced mod
    /// `shards`. Lane 0 is fully avalanched, so consecutive digests
    /// spread uniformly.
    pub fn shard(&self, shards: usize) -> usize {
        if shards == 0 {
            return 0;
        }
        (self.0.first().copied().unwrap_or(0) % shards as u64) as usize
    }
}

/// The splitmix64 finalizer: a fast, full-avalanche bit mixer.
fn avalanche(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The reflected CRC-32 lookup table, built once on first use.
static CRC_TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();

fn crc_table() -> &'static [u32; 256] {
    CRC_TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (n, slot) in table.iter_mut().enumerate() {
            let mut c = n as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32 (ISO-HDLC / zlib) of a byte string.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((c ^ u32::from(b)) & 0xFF) as usize;
        c = table.get(idx).copied().unwrap_or(0) ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_injective_on_small_corpus() {
        let a = Digest::of_str("verb\u{1f}1\u{1f}{}");
        assert_eq!(a, Digest::of_str("verb\u{1f}1\u{1f}{}"));
        let mut seen = std::collections::BTreeSet::new();
        for verb in ["ping", "quickstart", "characterize", "defend"] {
            for seed in 0..64u64 {
                let d = Digest::of_str(&format!("{verb}\u{1f}{seed}\u{1f}{{}}"));
                assert!(seen.insert(d), "collision for {verb}/{seed}");
            }
        }
    }

    #[test]
    fn hex_round_trips() {
        let d = Digest::of_str("round trip");
        let hex = d.hex();
        assert_eq!(hex.len(), 64);
        assert_eq!(Digest::from_hex(&hex), Some(d));
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(&hex[..63]), None);
    }

    #[test]
    fn shards_spread_across_all_slots() {
        let mut hit = [false; 16];
        for i in 0..512u32 {
            let d = Digest::of_str(&format!("spread-{i}"));
            hit[d.shard(16)] = true;
        }
        assert!(hit.iter().all(|&h| h), "some shard never selected: {hit:?}");
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789" under CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }
}
