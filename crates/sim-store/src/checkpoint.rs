//! Sweep checkpoints: per-point result persistence so a multi-point
//! `defend`/`characterize` sweep interrupted by a drain resumes from the
//! points it already computed instead of restarting.
//!
//! A checkpoint is one JSONL file keyed by the sweep's content digest,
//! holding `(index, result)` records. Points are *index-addressed*, so
//! the on-disk append order — which follows worker scheduling — never
//! influences what a resume reads back: the `BTreeMap` rebuilt on open
//! is the same whatever order the points landed in.
//!
//! Records carry the same CRC-32 framing as the store's segment files;
//! a torn final line is truncated and simply recomputed as a missing
//! point.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use sim_rt::json;
use sim_rt::ser::Value;

use crate::digest::{crc32, Digest};
use crate::StoreError;

#[derive(Debug, Default)]
struct Inner {
    file: Option<File>,
    path: Option<PathBuf>,
    points: BTreeMap<u64, String>,
    recovered_truncated: u64,
}

/// A resumable per-point result log for one sweep.
#[derive(Debug, Default)]
pub struct Checkpoint {
    inner: Mutex<Inner>,
}

fn crc_preimage(index: u64, result: &str) -> String {
    format!("{index}\u{1f}{result}")
}

fn decode_line(line: &str) -> Option<(u64, String)> {
    let v = json::parse(line).ok()?;
    let crc = u32::try_from(v.get("crc")?.as_u64()?).ok()?;
    let index = v.get("index")?.as_u64()?;
    let result = v.get("result")?.as_str()?;
    if crc32(crc_preimage(index, result).as_bytes()) != crc {
        return None;
    }
    Some((index, result.to_string()))
}

impl Checkpoint {
    /// A checkpoint that keeps points in memory only — the null object
    /// for callers that want sweep code paths without persistence.
    pub fn in_memory() -> Checkpoint {
        Checkpoint::default()
    }

    /// Opens (creating if needed) the checkpoint for the sweep addressed
    /// by `key` under `dir`, loading any previously persisted points and
    /// truncating a torn tail.
    ///
    /// # Errors
    ///
    /// Returns an error when the directory or file cannot be created or
    /// read. Damaged record *content* is recovered by truncation, not
    /// reported as an error.
    pub fn open(dir: &Path, name: &str, key: &Digest) -> Result<Checkpoint, StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| {
            StoreError::new(format!("creating checkpoint dir {}: {e}", dir.display()))
        })?;
        let hex = key.hex();
        let short = hex.get(..16).unwrap_or(&hex);
        let path = dir.join(format!("ckpt-{name}-{short}.jsonl"));
        let mut inner = Inner::default();
        if path.exists() {
            let bytes = std::fs::read(&path).map_err(|e| {
                StoreError::new(format!("reading checkpoint {}: {e}", path.display()))
            })?;
            let keep = scan(&bytes, &mut inner.points);
            if keep < bytes.len() as u64 {
                let file = OpenOptions::new().write(true).open(&path).map_err(|e| {
                    StoreError::new(format!("truncating checkpoint {}: {e}", path.display()))
                })?;
                file.set_len(keep).map_err(|e| {
                    StoreError::new(format!("truncating checkpoint {}: {e}", path.display()))
                })?;
                inner.recovered_truncated = 1;
                obs::counter!("store.recovered_truncated").inc();
            }
        }
        let file = OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
            .map_err(|e| StoreError::new(format!("opening checkpoint {}: {e}", path.display())))?;
        inner.file = Some(file);
        inner.path = Some(path);
        Ok(Checkpoint {
            inner: Mutex::new(inner),
        })
    }

    /// The result JSON persisted for point `index`, if any. A hit counts
    /// toward `store.checkpoint.resumed` — it is work a resume skipped.
    pub fn get(&self, index: u64) -> Option<String> {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let hit = inner.points.get(&index).cloned();
        if hit.is_some() {
            obs::counter!("store.checkpoint.resumed").inc();
        }
        hit
    }

    /// Persists point `index`. Safe to call from pool workers — appends
    /// are serialized on the checkpoint's lock, and index addressing
    /// makes the landing order irrelevant. Write failures are counted
    /// (`store.io_errors`), not propagated: losing a checkpoint record
    /// only costs recomputation.
    pub fn put(&self, index: u64, result: &str) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if inner.points.contains_key(&index) {
            return;
        }
        inner.points.insert(index, result.to_string());
        obs::counter!("store.checkpoint.points").inc();
        if inner.file.is_some() {
            let crc = crc32(crc_preimage(index, result).as_bytes());
            let mut line = Value::Object(vec![
                ("crc".into(), Value::from(crc)),
                ("index".into(), Value::from(index)),
                ("result".into(), Value::Str(result.to_string())),
            ])
            .to_json();
            line.push('\n');
            let ok = inner
                .file
                .as_mut()
                .map(|f| {
                    f.write_all(line.as_bytes())
                        .and_then(|()| f.flush())
                        .is_ok()
                })
                .unwrap_or(false);
            if !ok {
                obs::counter!("store.io_errors").inc();
            }
        }
    }

    /// Number of persisted points.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .points
            .len()
    }

    /// Whether no points are persisted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Torn tails truncated when this checkpoint was opened (0 or 1).
    pub fn recovered_truncated(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .recovered_truncated
    }
}

/// Scans checkpoint bytes into `points`; returns the trustworthy prefix
/// length.
fn scan(bytes: &[u8], points: &mut BTreeMap<u64, String>) -> u64 {
    let mut offset = 0usize;
    while offset < bytes.len() {
        let Some(rest) = bytes.get(offset..) else {
            break;
        };
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            return offset as u64;
        };
        let line = match rest.get(..nl).map(std::str::from_utf8) {
            Some(Ok(line)) => line,
            _ => return offset as u64,
        };
        let Some((index, result)) = decode_line(line) else {
            return offset as u64;
        };
        points.insert(index, result);
        offset += nl + 1;
    }
    offset as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sim-store-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn points_survive_reopen_and_are_index_addressed() {
        let dir = tmpdir("resume");
        let key = Digest::of_str("sweep");
        {
            let ckpt = Checkpoint::open(&dir, "defend", &key).unwrap();
            // Landing order 2, 0 — index addressing must not care.
            ckpt.put(2, r#"{"p":2}"#);
            ckpt.put(0, r#"{"p":0}"#);
        }
        let ckpt = Checkpoint::open(&dir, "defend", &key).unwrap();
        assert_eq!(ckpt.len(), 2);
        assert_eq!(ckpt.get(0).as_deref(), Some(r#"{"p":0}"#));
        assert_eq!(ckpt.get(1), None);
        assert_eq!(ckpt.get(2).as_deref(), Some(r#"{"p":2}"#));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_sweeps_do_not_collide() {
        let dir = tmpdir("keys");
        let a = Checkpoint::open(&dir, "defend", &Digest::of_str("a")).unwrap();
        let b = Checkpoint::open(&dir, "defend", &Digest::of_str("b")).unwrap();
        a.put(0, r#"{"from":"a"}"#);
        assert_eq!(b.get(0), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_checkpoint_tail_is_recovered() {
        let dir = tmpdir("torn");
        let key = Digest::of_str("torn-sweep");
        {
            let ckpt = Checkpoint::open(&dir, "char", &key).unwrap();
            ckpt.put(0, r#"{"p":0}"#);
            ckpt.put(1, r#"{"p":1}"#);
        }
        let hex = key.hex();
        let path = dir.join(format!("ckpt-char-{}.jsonl", &hex[..16]));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let ckpt = Checkpoint::open(&dir, "char", &key).unwrap();
        assert_eq!(ckpt.recovered_truncated(), 1);
        assert_eq!(ckpt.get(0).as_deref(), Some(r#"{"p":0}"#));
        assert_eq!(ckpt.get(1), None);
        // The recomputed point can be re-persisted.
        ckpt.put(1, r#"{"p":1}"#);
        assert_eq!(ckpt.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_checkpoint_never_touches_disk() {
        let ckpt = Checkpoint::in_memory();
        ckpt.put(5, r#"{"x":1}"#);
        assert_eq!(ckpt.get(5).as_deref(), Some(r#"{"x":1}"#));
        assert!(!ckpt.is_empty());
    }
}
