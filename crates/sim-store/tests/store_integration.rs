//! Integration gates for the content-addressed store:
//!
//! * **Digest stability** — the content address is a function of the
//!   config's *content*, not its field order or zero signs, checked over
//!   randomly generated nested configs (property test).
//! * **Crash safety** — a JSONL segment whose final record is torn or
//!   corrupted reopens cleanly: the surviving prefix is served, the
//!   damage is counted in `store.recovered_truncated`, and the lost
//!   addresses behave as plain misses.

use std::path::PathBuf;

use sim_rt::rng::{Rng, SimRng, SliceShuffle};
use sim_rt::ser::Value;
use sim_store::{Store, StoreConfig};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sim-store-itest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A random nested config value: objects/arrays of scalars, depth ≤ 2.
fn random_config(rng: &mut SimRng, depth: usize) -> Value {
    let fields = rng.gen_range(1usize..6);
    Value::Object(
        (0..fields)
            .map(|i| {
                // The index prefix keeps names unique within the object —
                // JSON objects have no duplicate keys, and canonical key
                // sorting is only well defined without them.
                let name = format!("f{i}_{}", rng.gen_range(0u64..50));
                let v = match rng.gen_range(0u32..6) {
                    0 => Value::Int(rng.gen_range(-1_000i64..1_000)),
                    1 => Value::Float(f64::from(rng.gen_range(-500i32..500)) / 8.0),
                    2 => Value::Bool(rng.gen_bool(0.5)),
                    3 => Value::Str(format!("s{}", rng.next_u64() % 97)),
                    4 if depth > 0 => random_config(rng, depth - 1),
                    _ => Value::Array(
                        (0..rng.gen_range(0usize..4))
                            .map(|_| Value::Int(rng.gen_range(0i64..9)))
                            .collect(),
                    ),
                };
                (name, v)
            })
            .collect(),
    )
}

/// Recursively permutes every object's field order in place.
fn permute_fields(v: &mut Value, rng: &mut SimRng) {
    match v {
        Value::Object(fields) => {
            fields.shuffle(rng);
            for (_, child) in fields.iter_mut() {
                permute_fields(child, rng);
            }
        }
        Value::Array(items) => {
            for item in items.iter_mut() {
                permute_fields(item, rng);
            }
        }
        _ => {}
    }
}

sim_rt::prop_check! {
    cases = 128;

    /// The content address ignores object field order at every nesting
    /// depth: a permuted config digests identically.
    fn digest_ignores_field_order(seed in 0u64..1_000_000) {
        let mut rng = SimRng::seed_from_u64(seed);
        let config = random_config(&mut rng, 2);
        let mut permuted = config.clone();
        permute_fields(&mut permuted, &mut rng);
        assert_eq!(
            Store::key("verb", seed, &config),
            Store::key("verb", seed, &permuted),
            "field order leaked into the digest: {}",
            config.to_json()
        );
    }

    /// Each address axis separates: a different verb, seed, or config
    /// content changes the digest.
    fn digest_separates_the_three_axes(seed in 0u64..1_000_000) {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xA5A5);
        let config = random_config(&mut rng, 1);
        let base = Store::key("verb", seed, &config);
        assert_ne!(base, Store::key("verb2", seed, &config));
        assert_ne!(base, Store::key("verb", seed ^ 1, &config));
        let mut grown = match config.clone() {
            Value::Object(mut fields) => {
                fields.push(("zz_extra".into(), Value::Int(1)));
                Value::Object(fields)
            }
            other => other,
        };
        permute_fields(&mut grown, &mut rng);
        assert_ne!(base, Store::key("verb", seed, &grown));
    }
}

#[test]
fn digest_normalizes_negative_zero() {
    let a = Value::Object(vec![("x".into(), Value::Float(0.0))]);
    let b = Value::Object(vec![("x".into(), Value::Float(-0.0))]);
    assert_eq!(Store::key("v", 1, &a), Store::key("v", 1, &b));
}

/// The crash-safety acceptance test: chop bytes off the live segment's
/// final record, reopen, and the store serves the surviving prefix while
/// counting the recovery.
#[test]
fn torn_final_record_recovers_surviving_prefix() {
    let dir = tmpdir("torn");
    let cfg = || StoreConfig {
        dir: Some(dir.clone()),
        ..StoreConfig::default()
    };
    let keys: Vec<_> = (0..3)
        .map(|i| {
            let config = Value::Object(vec![("i".into(), Value::Int(i))]);
            Store::key("quickstart", 7, &config)
        })
        .collect();
    {
        let store = Store::open(cfg()).unwrap();
        for (i, key) in keys.iter().enumerate() {
            store.insert(key, "quickstart", 7, &format!(r#"{{"point":{i}}}"#));
        }
        assert_eq!(store.stats().persist_entries, 3);
    }

    // Tear the tail of the only segment mid-record.
    let seg = dir.join("seg-00000001.jsonl");
    let bytes = std::fs::read(&seg).unwrap();
    std::fs::write(&seg, &bytes[..bytes.len() - 4]).unwrap();

    let store = Store::open(cfg()).unwrap();
    let stats = store.stats();
    assert_eq!(stats.recovered_truncated, 1, "{stats:?}");
    assert_eq!(stats.persist_entries, 2, "only the torn record is lost");
    assert_eq!(
        store.get(&keys[0]).as_deref(),
        Some(r#"{"point":0}"#),
        "surviving prefix must be served"
    );
    assert_eq!(store.get(&keys[1]).as_deref(), Some(r#"{"point":1}"#));
    assert_eq!(store.get(&keys[2]), None, "torn record is a plain miss");
    // The miss is repairable: a reinsert lands in a clean segment tail.
    store.insert(&keys[2], "quickstart", 7, r#"{"point":2}"#);
    drop(store);
    let store = Store::open(cfg()).unwrap();
    assert_eq!(store.get(&keys[2]).as_deref(), Some(r#"{"point":2}"#));
    assert_eq!(store.stats().recovered_truncated, 0, "tail healed");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A flipped byte mid-file fails that record's CRC; the suffix after it
/// is untrusted by design (append-only ⇒ damage never heals later).
#[test]
fn corrupt_record_drops_the_untrusted_suffix() {
    let dir = tmpdir("corrupt");
    let cfg = || StoreConfig {
        dir: Some(dir.clone()),
        ..StoreConfig::default()
    };
    let keys: Vec<_> = (0..3)
        .map(|i| {
            let config = Value::Object(vec![("i".into(), Value::Int(i))]);
            Store::key("covert", 9, &config)
        })
        .collect();
    {
        let store = Store::open(cfg()).unwrap();
        for (i, key) in keys.iter().enumerate() {
            store.insert(key, "covert", 9, &format!(r#"{{"ber":{i}}}"#));
        }
    }
    let seg = dir.join("seg-00000001.jsonl");
    let mut bytes = std::fs::read(&seg).unwrap();
    // Flip a digit inside the second record's result payload.
    let line_len = bytes.len() / 3;
    let target = line_len + line_len / 2;
    bytes[target] = bytes[target].wrapping_add(1);
    std::fs::write(&seg, &bytes).unwrap();

    let store = Store::open(cfg()).unwrap();
    assert_eq!(store.stats().recovered_truncated, 1);
    assert_eq!(store.stats().persist_entries, 1);
    assert_eq!(store.get(&keys[0]).as_deref(), Some(r#"{"ber":0}"#));
    assert_eq!(store.get(&keys[1]), None);
    assert_eq!(store.get(&keys[2]), None);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Persisted results replay byte-identically across a reopen, and the
/// replay counts as a persistent-tier hit that promotes into the hot
/// tier.
#[test]
fn warm_reopen_replays_identical_bytes() {
    let dir = tmpdir("warm");
    let cfg = || StoreConfig {
        dir: Some(dir.clone()),
        ..StoreConfig::default()
    };
    let config = Value::Object(vec![("samples".into(), Value::Int(40))]);
    let key = Store::key("quickstart", 3, &config);
    let payload = r#"{"pearson":0.9991234567890123,"rows":[1,2,3]}"#;
    {
        let store = Store::open(cfg()).unwrap();
        store.insert(&key, "quickstart", 3, payload);
    }
    let store = Store::open(cfg()).unwrap();
    let first = store.get(&key).expect("persisted entry");
    assert_eq!(&*first, payload);
    let stats = store.stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.hits_persist, 1);
    // Second read is a pure hot-tier hit.
    let second = store.get(&key).expect("promoted entry");
    assert_eq!(&*second, payload);
    let stats = store.stats();
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.hits_persist, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
