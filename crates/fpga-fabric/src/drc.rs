//! Design-rule checks (DRC) for tenant netlists — the cloud's defense
//! against crafted sensor circuits.
//!
//! The paper notes that "RO circuits have been banned by commercial cloud
//! providers (e.g., AWS)": before a tenant bitstream is accepted, the
//! provider's flow rejects combinational loops (the defining structure of
//! a ring oscillator) and other self-timed constructs. This module models
//! that flow with a gate-level netlist and a cycle check over the
//! combinational subgraph — demonstrating *why* the RO baseline is not
//! deployable in clouds while AmpereBleed (which submits no circuit at
//! all) is unaffected.

use std::collections::BTreeMap;

/// Kind of a netlist cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Combinational lookup table.
    Lut,
    /// Carry-chain element (combinational).
    Carry,
    /// Flip-flop (sequential; breaks combinational paths).
    FlipFlop,
    /// Top-level input port.
    Input,
    /// Top-level output port.
    Output,
}

impl CellKind {
    /// Whether a path through this cell is combinational.
    pub fn is_combinational(self) -> bool {
        matches!(self, CellKind::Lut | CellKind::Carry)
    }
}

/// A gate-level netlist: cells and directed nets.
///
/// # Examples
///
/// ```
/// use fpga_fabric::drc::{check, Netlist, Violation};
///
/// let ro = Netlist::ring_oscillator(5);
/// let violations = check(&ro);
/// assert!(violations
///     .iter()
///     .any(|v| matches!(v, Violation::CombinationalLoop { .. })));
///
/// let counter = Netlist::counter(8);
/// assert!(check(&counter).is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    /// Cell kinds by id.
    cells: Vec<CellKind>,
    /// Cell names by id (diagnostics).
    names: Vec<String>,
    /// Directed edges `driver -> sink`.
    edges: Vec<(usize, usize)>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Adds a cell; returns its id.
    pub fn add_cell(&mut self, kind: CellKind, name: impl Into<String>) -> usize {
        self.cells.push(kind);
        self.names.push(name.into());
        self.cells.len() - 1
    }

    /// Connects `driver`'s output to `sink`'s input.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn connect(&mut self, driver: usize, sink: usize) {
        assert!(
            driver < self.cells.len() && sink < self.cells.len(),
            "cell id out of range"
        );
        self.edges.push((driver, sink));
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the netlist has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Kind of cell `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn kind(&self, id: usize) -> CellKind {
        self.cells[id]
    }

    /// Name of cell `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn name(&self, id: usize) -> &str {
        &self.names[id]
    }

    /// A classic `stages`-inverter ring oscillator (combinational loop
    /// feeding a counter) — the banned structure.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is even or zero.
    pub fn ring_oscillator(stages: usize) -> Self {
        assert!(stages % 2 == 1, "RO needs an odd number of inverters");
        let mut n = Netlist::new();
        let inverters: Vec<usize> = (0..stages)
            .map(|i| n.add_cell(CellKind::Lut, format!("inv{i}")))
            .collect();
        for i in 0..stages {
            n.connect(inverters[i], inverters[(i + 1) % stages]);
        }
        // The loop clocks a small counter.
        let ff = n.add_cell(CellKind::FlipFlop, "count0");
        n.connect(inverters[0], ff);
        n
    }

    /// A carry-chain TDC delay line: combinational but acyclic, ending in
    /// capture flip-flops. Passes the loop DRC (which is why TDC-class
    /// sensors postdate the RO ban).
    pub fn tdc_line(taps: usize) -> Self {
        let mut n = Netlist::new();
        let input = n.add_cell(CellKind::Input, "launch");
        let mut prev = input;
        for i in 0..taps {
            let carry = n.add_cell(CellKind::Carry, format!("tap{i}"));
            n.connect(prev, carry);
            let ff = n.add_cell(CellKind::FlipFlop, format!("cap{i}"));
            n.connect(carry, ff);
            prev = carry;
        }
        n
    }

    /// A plain synchronous counter: LUT increment logic with a flip-flop
    /// in the feedback path (sequential loop — allowed).
    pub fn counter(width: usize) -> Self {
        let mut n = Netlist::new();
        for i in 0..width.max(1) {
            let lut = n.add_cell(CellKind::Lut, format!("inc{i}"));
            let ff = n.add_cell(CellKind::FlipFlop, format!("q{i}"));
            n.connect(lut, ff);
            n.connect(ff, lut); // feedback through the FF: not combinational
        }
        n
    }
}

/// A design-rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// A combinational cycle (the RO structure). Carries the cells on the
    /// cycle, in order.
    CombinationalLoop {
        /// Cell names forming the loop.
        cycle: Vec<String>,
    },
    /// A combinational cell with no fanout — dead logic that synthesis
    /// should have removed; flagged as suspicious padding.
    DanglingCell {
        /// Name of the dangling cell.
        cell: String,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::CombinationalLoop { cycle } => {
                write!(f, "combinational loop: {}", cycle.join(" -> "))
            }
            Violation::DanglingCell { cell } => write!(f, "dangling cell: {cell}"),
        }
    }
}

/// Runs the provider's design-rule checks over a tenant netlist.
pub fn check(netlist: &Netlist) -> Vec<Violation> {
    let mut violations = Vec::new();

    // Combinational subgraph: edges between combinational cells only
    // (a flip-flop endpoint breaks the timing path).
    let mut adjacency: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &(driver, sink) in &netlist.edges {
        if netlist.cells[driver].is_combinational() && netlist.cells[sink].is_combinational() {
            adjacency.entry(driver).or_default().push(sink);
        }
    }

    // Iterative DFS cycle detection with path reconstruction.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks = vec![Mark::White; netlist.len()];
    let mut parent: Vec<Option<usize>> = vec![None; netlist.len()];
    for root in 0..netlist.len() {
        if marks[root] != Mark::White || !netlist.cells[root].is_combinational() {
            continue;
        }
        // (node, next-child-index) stack.
        let mut stack = vec![(root, 0usize)];
        marks[root] = Mark::Grey;
        while let Some(&mut (node, ref mut child_idx)) = stack.last_mut() {
            let children = adjacency.get(&node).map(Vec::as_slice).unwrap_or(&[]);
            if *child_idx < children.len() {
                let next = children[*child_idx];
                *child_idx += 1;
                match marks[next] {
                    Mark::White => {
                        marks[next] = Mark::Grey;
                        parent[next] = Some(node);
                        stack.push((next, 0));
                    }
                    Mark::Grey => {
                        // Found a cycle: walk parents from `node` back to
                        // `next`.
                        let mut cycle = vec![netlist.names[next].clone()];
                        let mut cur = node;
                        while cur != next {
                            cycle.push(netlist.names[cur].clone());
                            cur = parent[cur].expect("path to cycle head");
                        }
                        cycle.reverse();
                        violations.push(Violation::CombinationalLoop { cycle });
                    }
                    Mark::Black => {}
                }
            } else {
                marks[node] = Mark::Black;
                stack.pop();
            }
        }
    }

    // Dangling combinational cells (no fanout at all).
    let mut has_fanout = vec![false; netlist.len()];
    for &(driver, _) in &netlist.edges {
        has_fanout[driver] = true;
    }
    for (id, fanout) in has_fanout.iter().enumerate() {
        if netlist.cells[id].is_combinational() && !fanout {
            violations.push(Violation::DanglingCell {
                cell: netlist.names[id].clone(),
            });
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_oscillator_is_rejected() {
        let violations = check(&Netlist::ring_oscillator(5));
        let loops: Vec<&Violation> = violations
            .iter()
            .filter(|v| matches!(v, Violation::CombinationalLoop { .. }))
            .collect();
        assert_eq!(loops.len(), 1);
        if let Violation::CombinationalLoop { cycle } = loops[0] {
            assert_eq!(cycle.len(), 5, "all five inverters on the loop: {cycle:?}");
        }
    }

    #[test]
    fn tdc_passes_the_loop_check() {
        // This is the historical loophole: delay-line sensors are DRC-clean.
        let violations = check(&Netlist::tdc_line(64));
        assert!(
            violations.is_empty(),
            "TDC should pass the RO-ban DRC: {violations:?}"
        );
    }

    #[test]
    fn synchronous_counter_is_legal() {
        assert!(check(&Netlist::counter(16)).is_empty());
    }

    #[test]
    fn sequential_feedback_is_not_a_violation() {
        // LUT -> FF -> LUT loop: broken by the flip-flop.
        let mut n = Netlist::new();
        let lut = n.add_cell(CellKind::Lut, "logic");
        let ff = n.add_cell(CellKind::FlipFlop, "state");
        n.connect(lut, ff);
        n.connect(ff, lut);
        assert!(check(&n).is_empty());
    }

    #[test]
    fn two_cell_combinational_loop_detected() {
        let mut n = Netlist::new();
        let a = n.add_cell(CellKind::Lut, "a");
        let b = n.add_cell(CellKind::Lut, "b");
        n.connect(a, b);
        n.connect(b, a);
        let violations = check(&n);
        assert!(matches!(
            &violations[0],
            Violation::CombinationalLoop { cycle } if cycle.len() == 2
        ));
    }

    #[test]
    fn dangling_logic_flagged() {
        let mut n = Netlist::new();
        let lut = n.add_cell(CellKind::Lut, "orphan");
        let _ = lut;
        let violations = check(&n);
        assert_eq!(
            violations,
            vec![Violation::DanglingCell {
                cell: "orphan".into()
            }]
        );
        assert!(violations[0].to_string().contains("orphan"));
    }

    #[test]
    fn empty_netlist_is_clean() {
        assert!(check(&Netlist::new()).is_empty());
        assert!(Netlist::new().is_empty());
    }

    #[test]
    fn acyclic_diamond_is_clean() {
        let mut n = Netlist::new();
        let a = n.add_cell(CellKind::Lut, "a");
        let b = n.add_cell(CellKind::Lut, "b");
        let c = n.add_cell(CellKind::Lut, "c");
        let ff = n.add_cell(CellKind::FlipFlop, "out");
        n.connect(a, b);
        n.connect(a, c);
        n.connect(b, ff);
        n.connect(c, ff);
        assert!(check(&n).is_empty());
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_stage_ro_rejected_at_construction() {
        let _ = Netlist::ring_oscillator(4);
    }

    #[test]
    fn cell_accessors() {
        let n = Netlist::ring_oscillator(3);
        assert_eq!(n.len(), 4);
        assert_eq!(n.kind(0), CellKind::Lut);
        assert_eq!(n.name(0), "inv0");
        assert!(CellKind::Carry.is_combinational());
        assert!(!CellKind::FlipFlop.is_combinational());
    }
}
