//! Fabric resource inventory and bitstream descriptions.
//!
//! A [`FabricInventory`] describes what a device offers (the ZCU102 numbers
//! come from Section IV of the paper); a [`Bitstream`] describes what a
//! design consumes, where it is placed, and whether its sources are
//! IEEE-1735 encrypted (the DPU case). [`FabricInventory::deploy`] checks
//! that a bitstream fits before it is "programmed".

use std::fmt;

/// Resource utilization of a design or capacity of a device.
///
/// # Examples
///
/// ```
/// use fpga_fabric::resources::Utilization;
///
/// let a = Utilization { luts: 100, ffs: 200, dsps: 2, bram_kb: 36 };
/// let b = Utilization { luts: 50, ffs: 50, dsps: 0, bram_kb: 0 };
/// let sum = a + b;
/// assert_eq!(sum.luts, 150);
/// assert!(b.fits_within(&a));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Utilization {
    /// Lookup tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// DSP blocks.
    pub dsps: u64,
    /// Block RAM in kilobytes.
    pub bram_kb: u64,
}

impl Utilization {
    /// Whether every resource of `self` fits within `capacity`.
    pub fn fits_within(&self, capacity: &Utilization) -> bool {
        self.luts <= capacity.luts
            && self.ffs <= capacity.ffs
            && self.dsps <= capacity.dsps
            && self.bram_kb <= capacity.bram_kb
    }
}

impl std::ops::Add for Utilization {
    type Output = Utilization;

    fn add(self, rhs: Utilization) -> Utilization {
        Utilization {
            luts: self.luts + rhs.luts,
            ffs: self.ffs + rhs.ffs,
            dsps: self.dsps + rhs.dsps,
            bram_kb: self.bram_kb + rhs.bram_kb,
        }
    }
}

impl std::ops::AddAssign for Utilization {
    fn add_assign(&mut self, rhs: Utilization) {
        *self = *self + rhs;
    }
}

/// A rectangular placement region on the fabric die, in normalized
/// coordinates (`0.0..=1.0` on each axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Region {
    /// Left edge.
    pub x: f64,
    /// Bottom edge.
    pub y: f64,
    /// Width.
    pub w: f64,
    /// Height.
    pub h: f64,
}

impl Region {
    /// The whole die.
    pub const FULL: Region = Region {
        x: 0.0,
        y: 0.0,
        w: 1.0,
        h: 1.0,
    };

    /// Center point of the region.
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Euclidean distance between region centers.
    pub fn distance_to(&self, other: &Region) -> f64 {
        let (ax, ay) = self.center();
        let (bx, by) = other.center();
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// Splits the die into an `nx` x `ny` grid and returns cell `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `nx`/`ny` are zero or the cell indices are out of range.
    pub fn grid_cell(nx: usize, ny: usize, i: usize, j: usize) -> Region {
        assert!(nx > 0 && ny > 0, "grid dimensions must be non-zero");
        assert!(i < nx && j < ny, "grid cell out of range");
        let w = 1.0 / nx as f64;
        let h = 1.0 / ny as f64;
        Region {
            x: i as f64 * w,
            y: j as f64 * h,
            w,
            h,
        }
    }
}

/// A compiled design ready for deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct Bitstream {
    /// Design name.
    pub name: String,
    /// Total resource consumption.
    pub utilization: Utilization,
    /// Placement region.
    pub region: Region,
    /// Whether the HDL sources are IEEE-1735 encrypted (true for the DPU).
    pub encrypted: bool,
}

impl Bitstream {
    /// Creates a bitstream description.
    pub fn new(name: impl Into<String>, utilization: Utilization) -> Self {
        Bitstream {
            name: name.into(),
            utilization,
            region: Region::FULL,
            encrypted: false,
        }
    }

    /// Marks the bitstream as IEEE-1735 encrypted.
    pub fn encrypted(mut self) -> Self {
        self.encrypted = true;
        self
    }

    /// Constrains placement to a region.
    pub fn placed_in(mut self, region: Region) -> Self {
        self.region = region;
        self
    }
}

impl fmt::Display for Bitstream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} LUT / {} FF / {} DSP{})",
            self.name,
            self.utilization.luts,
            self.utilization.ffs,
            self.utilization.dsps,
            if self.encrypted { ", encrypted" } else { "" }
        )
    }
}

/// Error returned when a design does not fit the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeployError {
    /// Name of the rejected design.
    pub design: String,
    /// Capacity that was exceeded.
    pub available: Utilization,
    /// Requested utilization (including already-deployed designs).
    pub requested: Utilization,
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "design '{}' exceeds fabric capacity (requested {:?}, available {:?})",
            self.design, self.requested, self.available
        )
    }
}

impl std::error::Error for DeployError {}

/// Resource inventory of one FPGA device, with deployment tracking.
///
/// # Examples
///
/// ```
/// use fpga_fabric::resources::{Bitstream, FabricInventory, Utilization};
///
/// let mut fabric = FabricInventory::zcu102();
/// let design = Bitstream::new("rsa1024", Utilization {
///     luts: 30_000, ffs: 25_000, dsps: 256, bram_kb: 512,
/// });
/// fabric.deploy(&design).unwrap();
/// assert_eq!(fabric.deployed().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FabricInventory {
    capacity: Utilization,
    fabric_clock_mhz: u32,
    deployed: Vec<Bitstream>,
}

impl FabricInventory {
    /// The ZCU102's fabric (Section IV: 274,080 LUTs, 548,160 FFs,
    /// 2,520 DSPs, fabric clock 300 MHz).
    pub fn zcu102() -> Self {
        FabricInventory {
            capacity: Utilization {
                luts: 274_080,
                ffs: 548_160,
                dsps: 2_520,
                bram_kb: 32_100,
            },
            fabric_clock_mhz: 300,
            deployed: Vec::new(),
        }
    }

    /// A Versal-class fabric (VCK190-scale adaptable engines + PL).
    pub fn versal() -> Self {
        FabricInventory {
            capacity: Utilization {
                luts: 899_840,
                ffs: 1_799_680,
                dsps: 1_968,
                bram_kb: 34_000,
            },
            fabric_clock_mhz: 300,
            deployed: Vec::new(),
        }
    }

    /// Creates an inventory with explicit capacity.
    pub fn with_capacity(capacity: Utilization, fabric_clock_mhz: u32) -> Self {
        FabricInventory {
            capacity,
            fabric_clock_mhz,
            deployed: Vec::new(),
        }
    }

    /// Device capacity.
    pub fn capacity(&self) -> Utilization {
        self.capacity
    }

    /// Fabric clock in MHz.
    pub fn fabric_clock_mhz(&self) -> u32 {
        self.fabric_clock_mhz
    }

    /// Currently deployed bitstreams.
    pub fn deployed(&self) -> &[Bitstream] {
        &self.deployed
    }

    /// Sum of deployed utilization.
    pub fn used(&self) -> Utilization {
        self.deployed
            .iter()
            .fold(Utilization::default(), |acc, b| acc + b.utilization)
    }

    /// Deploys a bitstream, verifying resources.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError`] when the combined utilization of deployed
    /// designs plus `bitstream` exceeds device capacity.
    pub fn deploy(&mut self, bitstream: &Bitstream) -> Result<(), DeployError> {
        let requested = self.used() + bitstream.utilization;
        if !requested.fits_within(&self.capacity) {
            return Err(DeployError {
                design: bitstream.name.clone(),
                available: self.capacity,
                requested,
            });
        }
        self.deployed.push(bitstream.clone());
        Ok(())
    }

    /// Removes all deployed designs (full reconfiguration).
    pub fn clear(&mut self) {
        self.deployed.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zcu102_capacity_matches_paper() {
        let f = FabricInventory::zcu102();
        assert_eq!(f.capacity().luts, 274_080);
        assert_eq!(f.capacity().ffs, 548_160);
        assert_eq!(f.capacity().dsps, 2_520);
        assert_eq!(f.fabric_clock_mhz(), 300);
    }

    #[test]
    fn deploy_accumulates_and_rejects_overflow() {
        let mut f = FabricInventory::zcu102();
        let half = Bitstream::new(
            "half",
            Utilization {
                luts: 150_000,
                ffs: 200_000,
                dsps: 1_000,
                bram_kb: 10_000,
            },
        );
        f.deploy(&half).unwrap();
        let err = f.deploy(&half).unwrap_err();
        assert_eq!(err.design, "half");
        assert!(err.to_string().contains("exceeds"));
        assert_eq!(f.deployed().len(), 1);
        f.clear();
        assert!(f.deployed().is_empty());
        f.deploy(&half).unwrap();
    }

    #[test]
    fn utilization_addition() {
        let a = Utilization {
            luts: 1,
            ffs: 2,
            dsps: 3,
            bram_kb: 4,
        };
        let mut b = a;
        b += a;
        assert_eq!(
            b,
            Utilization {
                luts: 2,
                ffs: 4,
                dsps: 6,
                bram_kb: 8
            }
        );
    }

    #[test]
    fn grid_cells_tile_the_die() {
        let mut area = 0.0;
        for i in 0..4 {
            for j in 0..5 {
                let r = Region::grid_cell(4, 5, i, j);
                area += r.w * r.h;
                assert!(r.x >= 0.0 && r.x + r.w <= 1.0 + 1e-12);
                assert!(r.y >= 0.0 && r.y + r.h <= 1.0 + 1e-12);
            }
        }
        assert!((area - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn grid_cell_bounds_checked() {
        let _ = Region::grid_cell(2, 2, 2, 0);
    }

    #[test]
    fn region_distance_is_symmetric() {
        let a = Region::grid_cell(4, 4, 0, 0);
        let b = Region::grid_cell(4, 4, 3, 3);
        assert_eq!(a.distance_to(&b), b.distance_to(&a));
        assert_eq!(a.distance_to(&a), 0.0);
    }

    #[test]
    fn bitstream_display_mentions_encryption() {
        let b = Bitstream::new("dpu", Utilization::default()).encrypted();
        assert!(b.to_string().contains("encrypted"));
        assert!(b.encrypted);
    }

    sim_rt::prop_check! {
        fn fits_within_is_reflexive_and_monotone(
            luts in 0u64..1_000_000, ffs in 0u64..1_000_000,
            dsps in 0u64..10_000, bram in 0u64..100_000
        ) {
            let u = Utilization { luts, ffs, dsps, bram_kb: bram };
            assert!(u.fits_within(&u));
            let bigger = u + Utilization { luts: 1, ffs: 1, dsps: 1, bram_kb: 1 };
            assert!(u.fits_within(&bigger));
            assert!(!bigger.fits_within(&u));
        }
    }
}
