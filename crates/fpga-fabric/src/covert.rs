//! Covert-channel transmitter circuit.
//!
//! The same sensor path AmpereBleed uses for eavesdropping also carries
//! deliberate signalling: a colluding circuit in the fabric modulates its
//! switching activity (on-off keying) and an unprivileged process on the
//! ARM cores demodulates it from the hwmon current channel — a
//! fabric-to-software covert channel that crosses the FPGA/CPU isolation
//! boundary without any shared memory or crafted receiver circuit.
//!
//! The transmitter repeats a frame of `[preamble | payload]` bits; each
//! bit holds the load on or off for one bit period. Because the receiver
//! can only observe at the sensor's update cadence (35 ms unprivileged),
//! usable bit periods are small multiples of that interval.

use zynq_soc::{hash01, PowerDomain, PowerLoad, SimTime};

use crate::resources::{Bitstream, Utilization};

/// The fixed synchronization preamble (alternating bits, 0xAA-style).
pub const PREAMBLE: [bool; 8] = [true, false, true, false, true, false, true, false];

/// Configuration of a [`CovertTransmitter`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CovertConfig {
    /// Duration of one bit cell.
    pub bit_period: SimTime,
    /// Additional fabric current while transmitting a 1, in mA.
    pub on_ma: f64,
    /// Quiescent current of the deployed transmitter, in mA.
    pub idle_ma: f64,
    /// Relative activity jitter while on.
    pub jitter: f64,
}

impl Default for CovertConfig {
    fn default() -> Self {
        CovertConfig {
            // Three 35 ms sensor updates per bit: robust majority voting.
            bit_period: SimTime::from_ms(105),
            on_ma: 400.0,
            idle_ma: 25.0,
            jitter: 0.004,
        }
    }
}

impl CovertConfig {
    /// Raw channel bandwidth in bits per second (before framing overhead).
    pub fn raw_bandwidth_bps(&self) -> f64 {
        1.0 / self.bit_period.as_secs_f64()
    }
}

/// A fabric circuit repeatedly broadcasting a payload via its current
/// draw.
///
/// # Examples
///
/// ```
/// use fpga_fabric::covert::{CovertConfig, CovertTransmitter};
/// use zynq_soc::{PowerDomain, PowerLoad, SimTime};
///
/// let tx = CovertTransmitter::new(CovertConfig::default(), b"hi", 1);
/// assert_eq!(tx.frame_bits(), 8 + 16); // preamble + 2 bytes
/// let i = tx.current_ma(SimTime::ZERO, PowerDomain::FpgaLogic);
/// assert!(i > 0.0);
/// ```
#[derive(Debug)]
pub struct CovertTransmitter {
    config: CovertConfig,
    /// Frame bits: preamble then payload, MSB-first per byte.
    frame: Vec<bool>,
    payload_len: usize,
    seed: u64,
}

impl CovertTransmitter {
    /// Builds a transmitter for `payload` (broadcast cyclically from
    /// simulation time zero).
    ///
    /// # Panics
    ///
    /// Panics if `payload` is empty.
    pub fn new(config: CovertConfig, payload: &[u8], seed: u64) -> Self {
        assert!(!payload.is_empty(), "payload must be non-empty");
        let mut frame = Vec::with_capacity(PREAMBLE.len() + payload.len() * 8);
        frame.extend_from_slice(&PREAMBLE);
        for &byte in payload {
            for bit in (0..8).rev() {
                frame.push((byte >> bit) & 1 == 1);
            }
        }
        CovertTransmitter {
            config,
            frame,
            payload_len: payload.len(),
            seed,
        }
    }

    /// The transmitter configuration.
    pub fn config(&self) -> &CovertConfig {
        &self.config
    }

    /// Bits per frame (preamble + payload).
    pub fn frame_bits(&self) -> usize {
        self.frame.len()
    }

    /// Payload length in bytes.
    pub fn payload_len(&self) -> usize {
        self.payload_len
    }

    /// Duration of one full frame.
    pub fn frame_period(&self) -> SimTime {
        SimTime::from_nanos(self.config.bit_period.as_nanos() * self.frame.len() as u64)
    }

    /// The bit on the wire at time `t`.
    pub fn bit_at(&self, t: SimTime) -> bool {
        let slot = (t.as_nanos() / self.config.bit_period.as_nanos()) as usize % self.frame.len();
        self.frame[slot]
    }

    /// Resource utilization: a modest toggling array plus control.
    pub fn bitstream(&self) -> Bitstream {
        Bitstream::new(
            "covert-transmitter",
            Utilization {
                luts: 12_000,
                ffs: 12_000,
                dsps: 0,
                bram_kb: 4,
            },
        )
    }
}

impl PowerLoad for CovertTransmitter {
    fn current_ma(&self, t: SimTime, domain: PowerDomain) -> f64 {
        if domain != PowerDomain::FpgaLogic {
            return 0.0;
        }
        let mut i = self.config.idle_ma;
        if self.bit_at(t) {
            let bucket = t.as_micros() / 500;
            let jitter = (hash01(self.seed, 4, bucket) - 0.5) * 2.0 * self.config.jitter;
            i += self.config.on_ma * (1.0 + jitter);
        }
        i
    }

    fn label(&self) -> &str {
        "covert-transmitter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_layout() {
        let tx = CovertTransmitter::new(CovertConfig::default(), &[0b1100_0001], 0);
        assert_eq!(tx.frame_bits(), 16);
        assert_eq!(tx.payload_len(), 1);
        // Preamble first.
        for (i, &expect) in PREAMBLE.iter().enumerate() {
            let t = SimTime::from_ms(105 * i as u64 + 1);
            assert_eq!(tx.bit_at(t), expect, "preamble bit {i}");
        }
        // Then MSB-first payload: 1,1,0,0,0,0,0,1.
        let payload_bits = [true, true, false, false, false, false, false, true];
        for (i, &expect) in payload_bits.iter().enumerate() {
            let t = SimTime::from_ms(105 * (8 + i) as u64 + 1);
            assert_eq!(tx.bit_at(t), expect, "payload bit {i}");
        }
    }

    #[test]
    fn frame_repeats() {
        let tx = CovertTransmitter::new(CovertConfig::default(), b"z", 0);
        let period = tx.frame_period();
        let t = SimTime::from_ms(13);
        assert_eq!(tx.bit_at(t), tx.bit_at(t + period));
    }

    #[test]
    fn on_bits_draw_more_current() {
        let tx = CovertTransmitter::new(CovertConfig::default(), &[0b1000_0000], 3);
        // Slot 8 is payload bit 0 = 1; slot 9 is 0.
        let on = tx.current_ma(SimTime::from_ms(105 * 8 + 1), PowerDomain::FpgaLogic);
        let off = tx.current_ma(SimTime::from_ms(105 * 9 + 1), PowerDomain::FpgaLogic);
        assert!(on > off + 300.0, "{on} vs {off}");
        assert_eq!(tx.current_ma(SimTime::ZERO, PowerDomain::Ddr), 0.0);
    }

    #[test]
    fn bandwidth_reporting() {
        let cfg = CovertConfig::default();
        assert!((cfg.raw_bandwidth_bps() - 1.0 / 0.105).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_payload_rejected() {
        let _ = CovertTransmitter::new(CovertConfig::default(), &[], 0);
    }
}
