//! RSA-1024 victim circuit (Square-and-Multiply, two multiplier modules).
//!
//! Following Zhao & Suh's design (modified to 100 MHz as in Section IV-C of
//! the paper): a state machine iterates over each bit of the 1024-bit
//! exponent from the least-significant end. One modular-multiplier module
//! computes the running square every iteration; when the current exponent
//! bit is 1 a second module simultaneously computes the multiplication, so
//! bit=1 iterations switch roughly twice as much logic. Both multipliers
//! retire in the same (fixed) number of cycles, so the *timing* is
//! constant — only the current draw leaks.
//!
//! The secret exponent is embedded in the encrypted bitstream
//! ([`RsaCircuit`] never exposes it); once deployed, even privileged
//! software cannot read the key back. The only leak is the per-iteration
//! multiplier activity, which is derived from the genuine algorithm
//! (see [`crate::bigint::U1024::mod_exp`]).

use std::sync::atomic::{AtomicBool, Ordering};

use zynq_soc::{hash01, PowerDomain, PowerLoad, SimTime};

use crate::bigint::{BITS, U1024};
use crate::resources::{Bitstream, Utilization};

/// A 1024-bit RSA private exponent.
///
/// # Examples
///
/// ```
/// use fpga_fabric::rsa::RsaKey;
///
/// let key = RsaKey::with_hamming_weight(128, 7).unwrap();
/// assert_eq!(key.hamming_weight(), 128);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaKey {
    exponent: U1024,
}

/// Error constructing an [`RsaKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum KeyError {
    /// The circuit does not support an all-zero exponent (the paper's first
    /// key is 1 for the same reason).
    ZeroExponent,
    /// Requested Hamming weight exceeds 1024.
    WeightTooLarge(u32),
}

impl std::fmt::Display for KeyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyError::ZeroExponent => write!(f, "exponent must be non-zero"),
            KeyError::WeightTooLarge(w) => {
                write!(f, "hamming weight {w} exceeds 1024")
            }
        }
    }
}

impl std::error::Error for KeyError {}

impl RsaKey {
    /// Creates a key from an explicit exponent.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::ZeroExponent`] for a zero exponent.
    pub fn new(exponent: U1024) -> Result<Self, KeyError> {
        if exponent.is_zero() {
            return Err(KeyError::ZeroExponent);
        }
        Ok(RsaKey { exponent })
    }

    /// Creates a key with exactly `weight` set bits, spread evenly over the
    /// 1024 positions with a seed-dependent offset — the key-construction
    /// procedure of the Figure 4 experiment (17 keys, weights 1, 64, 128,
    /// ..., 1024).
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::ZeroExponent`] for `weight == 0` and
    /// [`KeyError::WeightTooLarge`] for `weight > 1024`.
    pub fn with_hamming_weight(weight: u32, seed: u64) -> Result<Self, KeyError> {
        if weight == 0 {
            return Err(KeyError::ZeroExponent);
        }
        if weight as usize > BITS {
            return Err(KeyError::WeightTooLarge(weight));
        }
        let mut exponent = U1024::ZERO;
        let offset = (hash01(seed, 0, 0) * BITS as f64) as usize;
        for i in 0..weight as usize {
            let pos = (i * BITS / weight as usize + offset) % BITS;
            exponent.set_bit(pos, true);
        }
        debug_assert_eq!(exponent.hamming_weight(), weight);
        Ok(RsaKey { exponent })
    }

    /// Creates a uniformly random key (expected weight ~512).
    pub fn random(seed: u64) -> Self {
        let mut exponent = U1024::random(seed);
        exponent.set_bit(0, true); // keep it odd and non-zero
        RsaKey { exponent }
    }

    /// The key's Hamming weight — the secret quantity the attack recovers.
    pub fn hamming_weight(&self) -> u32 {
        self.exponent.hamming_weight()
    }

    /// Bit `i` of the exponent. Private to the crate: only the circuit's
    /// internal state machine may observe key bits.
    pub(crate) fn bit(&self, i: usize) -> bool {
        self.exponent.bit(i)
    }

    pub(crate) fn exponent(&self) -> &U1024 {
        &self.exponent
    }
}

/// Electrical and timing parameters of the RSA circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RsaConfig {
    /// Circuit clock in MHz (paper: 100 MHz, vs. 20 MHz in Zhao & Suh).
    pub clock_mhz: u32,
    /// Cycles per Square-and-Multiply iteration (both multipliers are
    /// synchronized to retire together).
    pub cycles_per_iteration: u32,
    /// Idle cycles between consecutive encryptions.
    pub gap_cycles: u32,
    /// Quiescent current of the deployed circuit (clock tree + state
    /// machine), mA.
    pub idle_ma: f64,
    /// Additional current while the always-on square module computes, mA.
    pub square_ma: f64,
    /// Additional current while the second (multiply) module computes, mA.
    pub multiply_ma: f64,
    /// Relative cycle-to-cycle activity jitter.
    pub jitter: f64,
}

impl Default for RsaConfig {
    fn default() -> Self {
        RsaConfig {
            clock_mhz: 100,
            cycles_per_iteration: 1_056,
            gap_cycles: 4_096,
            idle_ma: 45.0,
            square_ma: 60.0,
            // Calibrated so adjacent Hamming-weight groups (64 bits apart)
            // sit ~8 mA apart: resolvable by the 1 mA current channel but
            // below the 25 mW power LSB once multiplied by ~0.85 V.
            multiply_ma: 128.0,
            jitter: 0.003,
        }
    }
}

impl RsaConfig {
    /// Duration of one Square-and-Multiply iteration.
    pub fn iteration_time(&self) -> SimTime {
        SimTime::from_nanos(self.cycles_per_iteration as u64 * 1_000 / self.clock_mhz as u64)
    }

    /// Duration of one full encryption (1024 iterations + inter-encryption
    /// gap).
    pub fn encryption_period(&self) -> SimTime {
        let cycles = self.cycles_per_iteration as u64 * BITS as u64 + self.gap_cycles as u64;
        SimTime::from_nanos(cycles * 1_000 / self.clock_mhz as u64)
    }
}

/// The deployed RSA-1024 accelerator, repeatedly encrypting.
///
/// # Examples
///
/// ```
/// use fpga_fabric::rsa::{RsaCircuit, RsaConfig, RsaKey};
/// use zynq_soc::{PowerDomain, PowerLoad, SimTime};
///
/// let key = RsaKey::with_hamming_weight(512, 1).unwrap();
/// let rsa = RsaCircuit::new(RsaConfig::default(), key, 42);
/// let i = rsa.current_ma(SimTime::from_ms(1), PowerDomain::FpgaLogic);
/// assert!(i > 0.0);
/// ```
#[derive(Debug)]
pub struct RsaCircuit {
    config: RsaConfig,
    key: RsaKey,
    modulus: U1024,
    running: AtomicBool,
    seed: u64,
}

impl RsaCircuit {
    /// Deploys the circuit with a sealed `key`. The modulus is derived from
    /// the seed (a full-width odd value, as a real key pair would have).
    pub fn new(config: RsaConfig, key: RsaKey, seed: u64) -> Self {
        let mut modulus = U1024::random(seed ^ 0x6D6F_6475); // "modu"
        modulus.set_bit(0, true);
        modulus.set_bit(BITS - 1, true);
        RsaCircuit {
            config,
            key,
            modulus,
            running: AtomicBool::new(true),
            seed,
        }
    }

    /// Deploys the circuit with an explicit modulus (tests use small
    /// moduli to keep real encryptions fast).
    ///
    /// # Panics
    ///
    /// Panics if the modulus is zero.
    pub fn with_modulus(config: RsaConfig, key: RsaKey, modulus: U1024, seed: u64) -> Self {
        assert!(!modulus.is_zero(), "modulus must be non-zero");
        RsaCircuit {
            config,
            key,
            modulus,
            running: AtomicBool::new(true),
            seed,
        }
    }

    /// The electrical/timing configuration.
    pub fn config(&self) -> &RsaConfig {
        &self.config
    }

    /// Starts or pauses the encryption loop (the ARM-side driver's control
    /// register).
    pub fn set_running(&self, running: bool) {
        self.running.store(running, Ordering::Release);
        zynq_soc::invalidate_load_caches();
    }

    /// Whether the encryption loop is running.
    pub fn is_running(&self) -> bool {
        self.running.load(Ordering::Acquire)
    }

    /// Performs one genuine encryption `plaintext^key mod modulus` with the
    /// sealed key — the circuit's data path. The caller only ever sees the
    /// ciphertext.
    pub fn encrypt(&self, plaintext: &U1024) -> U1024 {
        plaintext
            .reduce(&self.modulus)
            .mod_exp(self.key.exponent(), &self.modulus)
    }

    /// Resource utilization: two 1024-bit shift-add multipliers dominate.
    pub fn bitstream(&self) -> Bitstream {
        Bitstream::new(
            "rsa1024",
            Utilization {
                luts: 30_000,
                ffs: 26_000,
                dsps: 0,
                bram_kb: 16,
            },
        )
        .encrypted()
    }

    /// The state machine's iteration index and in-gap flag at time `t`
    /// (encryption loops back-to-back from `t = 0`).
    fn phase_at(&self, t: SimTime) -> Option<usize> {
        let period = self.config.encryption_period().as_nanos();
        let offset = t.as_nanos() % period;
        let iter_ns = self.config.iteration_time().as_nanos();
        let idx = (offset / iter_ns) as usize;
        if idx < BITS {
            Some(idx)
        } else {
            None // inter-encryption gap
        }
    }
}

impl PowerLoad for RsaCircuit {
    fn current_ma(&self, t: SimTime, domain: PowerDomain) -> f64 {
        if domain != PowerDomain::FpgaLogic {
            return 0.0;
        }
        if !self.is_running() {
            return self.config.idle_ma;
        }
        let mut i = self.config.idle_ma;
        if let Some(iter) = self.phase_at(t) {
            i += self.config.square_ma;
            if self.key.bit(iter) {
                i += self.config.multiply_ma;
            }
        }
        // Cycle-scale activity jitter, bucketed at 1 us.
        let bucket = t.as_micros();
        let jitter = (hash01(self.seed, 1, bucket) - 0.5) * 2.0 * self.config.jitter;
        i * (1.0 + jitter)
    }

    fn label(&self) -> &str {
        "rsa1024"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_weight_construction() {
        for w in [1u32, 64, 512, 1024] {
            let k = RsaKey::with_hamming_weight(w, 3).unwrap();
            assert_eq!(k.hamming_weight(), w);
        }
    }

    #[test]
    fn key_construction_errors() {
        assert_eq!(
            RsaKey::with_hamming_weight(0, 0),
            Err(KeyError::ZeroExponent)
        );
        assert_eq!(
            RsaKey::with_hamming_weight(1025, 0),
            Err(KeyError::WeightTooLarge(1025))
        );
        assert_eq!(RsaKey::new(U1024::ZERO), Err(KeyError::ZeroExponent));
    }

    #[test]
    fn seventeen_paper_keys() {
        // HW = 1, then 64..1024 in steps of 64 -> 17 keys.
        let weights: Vec<u32> = std::iter::once(1).chain((1..=16).map(|i| i * 64)).collect();
        assert_eq!(weights.len(), 17);
        for w in weights {
            assert_eq!(
                RsaKey::with_hamming_weight(w, 9).unwrap().hamming_weight(),
                w
            );
        }
    }

    #[test]
    fn timing_at_100mhz() {
        let c = RsaConfig::default();
        // 1056 cycles at 100 MHz = 10.56 us per iteration.
        assert_eq!(c.iteration_time(), SimTime::from_nanos(10_560));
        // 1024 iterations + gap ~= 10.85 ms per encryption.
        let period_ms = c.encryption_period().as_secs_f64() * 1e3;
        assert!((10.0..12.0).contains(&period_ms), "{period_ms} ms");
    }

    #[test]
    fn mean_current_tracks_hamming_weight() {
        let mean_i = |hw: u32| {
            let key = RsaKey::with_hamming_weight(hw, 5).unwrap();
            let rsa = RsaCircuit::new(RsaConfig::default(), key, 5);
            let mut acc = 0.0;
            let n = 4_000;
            for k in 0..n {
                let t = SimTime::from_us(k as u64 * 7 + 3);
                acc += rsa.current_ma(t, PowerDomain::FpgaLogic);
            }
            acc / n as f64
        };
        let lo = mean_i(64);
        let mid = mean_i(512);
        let hi = mean_i(1024);
        assert!(lo < mid && mid < hi, "{lo} {mid} {hi}");
        // Full-weight vs low-weight spread is on the order of multiply_ma.
        assert!(hi - lo > 80.0, "spread {}", hi - lo);
        // Adjacent groups (64 bits apart) are ~8 mA apart.
        let step = (hi - lo) / 15.0;
        assert!((4.0..14.0).contains(&step), "step {step} mA");
    }

    #[test]
    fn constant_time_iterations() {
        // Timing must NOT leak: iteration boundaries are identical for all
        // keys (only current differs).
        let k1 = RsaKey::with_hamming_weight(1, 0).unwrap();
        let k2 = RsaKey::with_hamming_weight(1024, 0).unwrap();
        let a = RsaCircuit::new(RsaConfig::default(), k1, 0);
        let b = RsaCircuit::new(RsaConfig::default(), k2, 0);
        assert_eq!(
            a.config().encryption_period(),
            b.config().encryption_period()
        );
    }

    #[test]
    fn paused_circuit_draws_idle_current() {
        let key = RsaKey::with_hamming_weight(512, 1).unwrap();
        let rsa = RsaCircuit::new(RsaConfig::default(), key, 1);
        rsa.set_running(false);
        assert!(!rsa.is_running());
        let i = rsa.current_ma(SimTime::from_ms(2), PowerDomain::FpgaLogic);
        assert_eq!(i, RsaConfig::default().idle_ma);
    }

    #[test]
    fn no_current_on_other_domains() {
        let key = RsaKey::with_hamming_weight(512, 1).unwrap();
        let rsa = RsaCircuit::new(RsaConfig::default(), key, 1);
        assert_eq!(rsa.current_ma(SimTime::ZERO, PowerDomain::Ddr), 0.0);
    }

    #[test]
    fn encrypt_computes_real_modexp() {
        // Small modulus keeps the shift-add datapath fast in tests while
        // exercising the genuine 1024-bit-wide machinery.
        let key = RsaKey::new(U1024::from_u64(117)).unwrap();
        let rsa = RsaCircuit::with_modulus(RsaConfig::default(), key, U1024::from_u64(1009), 0);
        let mut expect = 1u64;
        for _ in 0..117 {
            expect = expect * 5 % 1009;
        }
        assert_eq!(rsa.encrypt(&U1024::from_u64(5)), U1024::from_u64(expect));
    }

    #[test]
    fn bitstream_is_encrypted() {
        let key = RsaKey::with_hamming_weight(512, 1).unwrap();
        let rsa = RsaCircuit::new(RsaConfig::default(), key, 1);
        assert!(rsa.bitstream().encrypted);
    }

    #[test]
    fn gap_phase_has_no_multiplier_activity() {
        let config = RsaConfig {
            jitter: 0.0,
            ..RsaConfig::default()
        };
        let key = RsaKey::with_hamming_weight(1024, 0).unwrap();
        let rsa = RsaCircuit::new(config, key, 0);
        // A time inside the gap: just before the period ends.
        let period = config.encryption_period();
        let in_gap = period.saturating_sub(SimTime::from_us(1));
        let i = rsa.current_ma(in_gap, PowerDomain::FpgaLogic);
        assert_eq!(i, config.idle_ma);
    }

    sim_rt::prop_check! {
        cases = 32;

        fn weight_construction_exact(w in 1u32..=1024, seed in 0u64..100) {
            let k = RsaKey::with_hamming_weight(w, seed).unwrap();
            assert_eq!(k.hamming_weight(), w);
        }

        fn current_bounded(ms in 0u64..100, hw in 1u32..=1024) {
            let key = RsaKey::with_hamming_weight(hw, 2).unwrap();
            let rsa = RsaCircuit::new(RsaConfig::default(), key, 2);
            let i = rsa.current_ma(SimTime::from_ms(ms), PowerDomain::FpgaLogic);
            let max = (45.0 + 60.0 + 128.0) * 1.01;
            assert!(i >= 0.0 && i <= max);
        }
    }
}
