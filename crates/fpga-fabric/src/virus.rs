//! Power-virus instance array (Gnad et al., FPL'17).
//!
//! The characterization experiment of Figure 2 deploys 160 k power-virus
//! instances covering the major routing resources of the ZCU102, divided
//! into 160 groups of 1 k evenly-distributed instances. The ARM side
//! dynamically activates 0..=160 groups, producing 161 distinct fabric
//! activity levels.
//!
//! A virus instance is a legal (routable, non-short-circuit) design that
//! maximizes switching activity; electrically it is a nearly constant
//! dynamic-current source while enabled, plus static leakage while merely
//! deployed. Group activation is controlled through an atomic so the
//! attacker/victim threads can reconfigure it while the electrical solve
//! keeps reading a consistent value.

use std::sync::atomic::{AtomicU32, Ordering};

use zynq_soc::{
    hash01_bucket_term, hash01_finish, hash01_stream_key, GaussianNoise, PowerDomain, PowerLoad,
    SimTime,
};

use crate::resources::{Bitstream, Region, Utilization};

/// Configuration of a [`PowerVirusArray`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VirusConfig {
    /// Number of independently activatable groups (paper: 160).
    pub groups: u32,
    /// Instances per group (paper: 1 000).
    pub instances_per_group: u32,
    /// Dynamic current of one fully active group, in mA. Calibrated so one
    /// group step moves the 1 mA-resolution hwmon current reading by ~40
    /// LSBs, matching Figure 2.
    pub active_ma_per_group: f64,
    /// Static leakage of one deployed (inactive) group, in mA. This is why
    /// "current measurements do not start from 0" in Figure 2.
    pub leakage_ma_per_group: f64,
    /// Relative high-frequency jitter of the active groups' draw.
    pub activity_jitter: f64,
    /// Relative per-group process variation (1 sigma).
    pub process_variation: f64,
}

impl Default for VirusConfig {
    fn default() -> Self {
        VirusConfig {
            groups: 160,
            instances_per_group: 1_000,
            active_ma_per_group: 40.0,
            leakage_ma_per_group: 2.5,
            activity_jitter: 0.004,
            process_variation: 0.01,
        }
    }
}

/// The deployed power-virus array.
///
/// # Examples
///
/// ```
/// use fpga_fabric::virus::{PowerVirusArray, VirusConfig};
/// use zynq_soc::{PowerDomain, PowerLoad, SimTime};
///
/// let virus = PowerVirusArray::new(VirusConfig::default(), 7);
/// let idle = virus.current_ma(SimTime::ZERO, PowerDomain::FpgaLogic);
/// virus.activate_groups(80).unwrap();
/// let busy = virus.current_ma(SimTime::ZERO, PowerDomain::FpgaLogic);
/// assert!(busy > idle + 3_000.0); // ~80 x 40 mA of extra draw
/// ```
#[derive(Debug)]
pub struct PowerVirusArray {
    config: VirusConfig,
    /// Multiplicative process-variation gain per group.
    group_gain: Vec<f64>,
    /// Hoisted `active_ma_per_group * gain` per group. The per-sample walk
    /// is the hottest loop in a conversion; the product is associativity-
    /// safe to precompute (`a * g * j` evaluates as `(a * g) * j`).
    group_amp_ma: Vec<f64>,
    /// Hoisted `hash01` stream keys (`seed` mixed with the group index),
    /// so the jitter walk only pays the bucket mix and finisher.
    group_stream_key: Vec<u64>,
    /// Placement of each group on the die (evenly distributed grid).
    group_region: Vec<Region>,
    active_groups: AtomicU32,
}

/// Error returned when activating more groups than are deployed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivateError {
    /// Requested group count.
    pub requested: u32,
    /// Deployed group count.
    pub deployed: u32,
}

impl std::fmt::Display for ActivateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot activate {} groups, only {} deployed",
            self.requested, self.deployed
        )
    }
}

impl std::error::Error for ActivateError {}

impl PowerVirusArray {
    /// Deploys a virus array; `seed` fixes process variation and jitter.
    ///
    /// # Panics
    ///
    /// Panics if `groups == 0` or `instances_per_group == 0`.
    pub fn new(config: VirusConfig, seed: u64) -> Self {
        assert!(config.groups > 0, "group count must be non-zero");
        assert!(
            config.instances_per_group > 0,
            "instances per group must be non-zero"
        );
        let mut noise = GaussianNoise::new(seed ^ 0x7672_7573); // "virus"
        let group_gain: Vec<f64> = (0..config.groups)
            .map(|_| (1.0 + noise.sample(0.0, config.process_variation)).max(0.5))
            .collect();
        let group_amp_ma: Vec<f64> = group_gain
            .iter()
            .map(|gain| config.active_ma_per_group * gain)
            .collect();
        let group_stream_key: Vec<u64> = (0..config.groups as u64)
            .map(|g| hash01_stream_key(seed, g))
            .collect();
        // Distribute groups over a near-square grid so activation spreads
        // across the die, as in the paper's even distribution.
        let nx = (config.groups as f64).sqrt().ceil() as usize;
        let ny = config.groups.div_ceil(nx as u32) as usize;
        let group_region: Vec<Region> = (0..config.groups as usize)
            .map(|g| Region::grid_cell(nx, ny, g % nx, g / nx))
            .collect();
        PowerVirusArray {
            config,
            group_gain,
            group_amp_ma,
            group_stream_key,
            group_region,
            active_groups: AtomicU32::new(0),
        }
    }

    /// The deployment configuration.
    pub fn config(&self) -> &VirusConfig {
        &self.config
    }

    /// Total deployed instance count (160 k in the paper's setup).
    pub fn total_instances(&self) -> u64 {
        self.config.groups as u64 * self.config.instances_per_group as u64
    }

    /// Activates exactly `n` groups (the first `n` in placement order),
    /// deactivating the rest. Callable from any thread.
    ///
    /// # Errors
    ///
    /// Returns [`ActivateError`] if `n` exceeds the deployed group count.
    pub fn activate_groups(&self, n: u32) -> Result<(), ActivateError> {
        if n > self.config.groups {
            obs::warn!(
                "fabric.virus",
                "activation beyond deployed group count rejected";
                "requested" => n as u64,
                "deployed" => self.config.groups as u64
            );
            return Err(ActivateError {
                requested: n,
                deployed: self.config.groups,
            });
        }
        self.active_groups.store(n, Ordering::Release);
        zynq_soc::invalidate_load_caches();
        obs::counter!("fabric.virus.activations").inc();
        obs::gauge!("fabric.virus.active_groups").set(n as f64);
        Ok(())
    }

    /// Number of currently active groups.
    pub fn active_groups(&self) -> u32 {
        self.active_groups.load(Ordering::Acquire)
    }

    /// Number of currently active instances.
    pub fn active_instances(&self) -> u64 {
        self.active_groups() as u64 * self.config.instances_per_group as u64
    }

    /// Placement region of group `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn group_region(&self, g: u32) -> Region {
        self.group_region[g as usize]
    }

    /// Resource utilization of the deployed array: one virus instance is
    /// roughly a LUT + FF pair with high-fanout routing.
    pub fn bitstream(&self) -> Bitstream {
        let n = self.total_instances();
        Bitstream::new(
            "power-virus-array",
            Utilization {
                luts: n,
                ffs: n,
                dsps: 0,
                bram_kb: 0,
            },
        )
    }

    /// Mean dynamic current expected for `n` active groups, before jitter
    /// (useful for calibration checks).
    pub fn nominal_active_ma(&self, n: u32) -> f64 {
        self.group_gain[..n.min(self.config.groups) as usize]
            .iter()
            .map(|g| g * self.config.active_ma_per_group)
            .sum()
    }
}

impl PowerVirusArray {
    /// Dynamic draw of the first `active` groups in jitter bucket
    /// `bucket_term` (a [`hash01_bucket_term`]). Summation order matches
    /// the original per-group walk exactly.
    ///
    /// `(h - 0.5) * jitter_span` is bit-identical to the defining
    /// `((h - 0.5) * 2.0) * jitter` form: the doubling is exact (power of
    /// two), so both orders round the same real product exactly once.
    #[inline]
    fn dynamic_ma(&self, active: usize, bucket_term: u64) -> f64 {
        let jitter_span = 2.0 * self.config.activity_jitter;
        let mut dynamic = 0.0;
        for (key, amp) in self.group_stream_key[..active]
            .iter()
            .zip(&self.group_amp_ma[..active])
        {
            let jitter = (hash01_finish(*key, bucket_term) - 0.5) * jitter_span;
            dynamic += amp * (1.0 + jitter);
        }
        dynamic
    }
}

impl PowerLoad for PowerVirusArray {
    fn current_ma(&self, t: SimTime, domain: PowerDomain) -> f64 {
        if domain != PowerDomain::FpgaLogic {
            return 0.0;
        }
        let active = self.active_groups().min(self.config.groups) as usize;
        let leakage = self.config.groups as f64 * self.config.leakage_ma_per_group;
        // 100 us jitter buckets: fast relative to the sensor's averaging
        // window, slow relative to the fabric clock.
        let bucket = t.as_micros() / 100;
        leakage + self.dynamic_ma(active, hash01_bucket_term(bucket))
    }

    /// Jitter is constant within a 100 µs bucket, so the two instants of a
    /// transient-pair evaluation (1 µs apart) often share the whole
    /// per-group walk — the dominant cost of a conversion under load. When
    /// the buckets differ (averaging steps land exactly on 100 µs
    /// boundaries, so a conversion's `t` and `t - 1 µs` always straddle
    /// one), a single fused walk serves both instants: each group's stream
    /// key and amplitude are loaded once and finished against both bucket
    /// terms, with per-accumulator summation order unchanged.
    fn current_ma_pair(&self, t_now: SimTime, t_prev: SimTime, domain: PowerDomain) -> (f64, f64) {
        if domain != PowerDomain::FpgaLogic {
            return (0.0, 0.0);
        }
        let active = self.active_groups().min(self.config.groups) as usize;
        let leakage = self.config.groups as f64 * self.config.leakage_ma_per_group;
        let bucket_now = t_now.as_micros() / 100;
        let bucket_prev = t_prev.as_micros() / 100;
        if bucket_now == bucket_prev {
            let i = leakage + self.dynamic_ma(active, hash01_bucket_term(bucket_now));
            return (i, i);
        }
        let term_now = hash01_bucket_term(bucket_now);
        let term_prev = hash01_bucket_term(bucket_prev);
        // Exact-doubling rewrite, see `dynamic_ma`.
        let jitter_span = 2.0 * self.config.activity_jitter;
        let mut dyn_now = 0.0;
        let mut dyn_prev = 0.0;
        for (key, amp) in self.group_stream_key[..active]
            .iter()
            .zip(&self.group_amp_ma[..active])
        {
            let jitter_now = (hash01_finish(*key, term_now) - 0.5) * jitter_span;
            dyn_now += amp * (1.0 + jitter_now);
            let jitter_prev = (hash01_finish(*key, term_prev) - 0.5) * jitter_span;
            dyn_prev += amp * (1.0 + jitter_prev);
        }
        (leakage + dyn_now, leakage + dyn_prev)
    }

    fn label(&self) -> &str {
        "power-virus-array"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> PowerVirusArray {
        PowerVirusArray::new(VirusConfig::default(), 42)
    }

    #[test]
    fn deployment_matches_paper_scale() {
        let v = array();
        assert_eq!(v.total_instances(), 160_000);
        assert_eq!(v.config().groups, 160);
        let bs = v.bitstream();
        assert_eq!(bs.utilization.luts, 160_000);
    }

    #[test]
    fn activation_is_monotone_in_current() {
        let v = array();
        let t = SimTime::from_ms(1);
        let mut prev = -1.0;
        for n in [0u32, 1, 10, 40, 80, 120, 160] {
            v.activate_groups(n).unwrap();
            let i = v.current_ma(t, PowerDomain::FpgaLogic);
            assert!(i > prev, "current must grow with active groups");
            prev = i;
        }
    }

    #[test]
    fn step_size_is_about_forty_ma() {
        let v = array();
        let t = SimTime::from_ms(3);
        v.activate_groups(100).unwrap();
        let a = v.current_ma(t, PowerDomain::FpgaLogic);
        v.activate_groups(101).unwrap();
        let b = v.current_ma(t, PowerDomain::FpgaLogic);
        let step = b - a;
        assert!((30.0..50.0).contains(&step), "step {step} mA");
    }

    #[test]
    fn idle_array_still_leaks() {
        let v = array();
        v.activate_groups(0).unwrap();
        let i = v.current_ma(SimTime::ZERO, PowerDomain::FpgaLogic);
        assert!(i > 100.0, "deployed instances must leak (got {i} mA)");
    }

    #[test]
    fn over_activation_is_rejected() {
        let v = array();
        let err = v.activate_groups(161).unwrap_err();
        assert_eq!(err.requested, 161);
        assert_eq!(err.deployed, 160);
        assert!(err.to_string().contains("161"));
        // State unchanged.
        assert_eq!(v.active_groups(), 0);
    }

    #[test]
    fn other_domains_unaffected() {
        let v = array();
        v.activate_groups(160).unwrap();
        for d in [
            PowerDomain::FullPowerCpu,
            PowerDomain::LowPowerCpu,
            PowerDomain::Ddr,
        ] {
            assert_eq!(v.current_ma(SimTime::ZERO, d), 0.0);
        }
    }

    #[test]
    fn groups_are_spatially_distributed() {
        let v = array();
        let first = v.group_region(0);
        let last = v.group_region(159);
        assert!(first.distance_to(&last) > 0.5, "groups must span the die");
    }

    #[test]
    fn jitter_is_small_and_time_dependent() {
        let v = array();
        v.activate_groups(160).unwrap();
        let a = v.current_ma(SimTime::from_us(50), PowerDomain::FpgaLogic);
        let b = v.current_ma(SimTime::from_us(250), PowerDomain::FpgaLogic);
        assert_ne!(a, b, "activity jitter must vary over time");
        let nominal = v.nominal_active_ma(160) + 160.0 * 2.5;
        assert!((a - nominal).abs() / nominal < 0.01);
    }

    #[test]
    fn full_swing_matches_figure_two_scale() {
        // 160 groups x ~40 mA = ~6.4 A of dynamic swing.
        let v = array();
        let t = SimTime::from_ms(7);
        v.activate_groups(0).unwrap();
        let idle = v.current_ma(t, PowerDomain::FpgaLogic);
        v.activate_groups(160).unwrap();
        let full = v.current_ma(t, PowerDomain::FpgaLogic);
        let swing = full - idle;
        assert!((5_800.0..7_000.0).contains(&swing), "swing {swing} mA");
    }

    #[test]
    fn deterministic_across_instances_with_same_seed() {
        let a = PowerVirusArray::new(VirusConfig::default(), 5);
        let b = PowerVirusArray::new(VirusConfig::default(), 5);
        a.activate_groups(77).unwrap();
        b.activate_groups(77).unwrap();
        let t = SimTime::from_ms(11);
        assert_eq!(
            a.current_ma(t, PowerDomain::FpgaLogic),
            b.current_ma(t, PowerDomain::FpgaLogic)
        );
    }

    sim_rt::prop_check! {
        fn current_nonnegative_and_bounded(n in 0u32..=160, ms in 0u64..10_000) {
            let v = array();
            v.activate_groups(n).unwrap();
            let i = v.current_ma(SimTime::from_ms(ms), PowerDomain::FpgaLogic);
            assert!(i >= 0.0);
            assert!(i < 8_000.0);
        }

        fn nominal_active_ma_is_monotone(n in 0u32..160) {
            let v = array();
            assert!(v.nominal_active_ma(n) <= v.nominal_active_ma(n + 1));
        }
    }
}
