//! FPGA fabric model: resources, bitstreams, and the victim/baseline
//! circuits of the AmpereBleed evaluation.
//!
//! The paper deploys three kinds of circuits in the ZCU102's programmable
//! logic; this crate builds behavioural equivalents of all of them:
//!
//! * [`virus::PowerVirusArray`] — 160 k power-virus instances (Gnad et al.,
//!   FPL'17) split into 160 groups of 1 k, dynamically activatable from the
//!   ARM side. These stress the fabric to produce the 161 distinct activity
//!   levels of Figure 2.
//! * [`ring_oscillator::RoBank`] — the ring-oscillator voltage sensors of
//!   Zhao & Suh (S&P'18), the *crafted-circuit baseline* AmpereBleed beats
//!   by 261x. RO counters track rail-voltage-induced delay changes, which a
//!   modern stabilized PDN reduces to almost nothing.
//! * [`rsa::RsaCircuit`] — an RSA-1024 square-and-multiply accelerator at
//!   100 MHz with two modular-multiplier modules. The key is sealed inside
//!   the (encrypted) bitstream; its only external signature is that
//!   iterations with an exponent bit of 1 activate both multipliers. The
//!   exponentiation itself is computed with a real 1024-bit big-integer
//!   implementation ([`bigint`]), so the activity schedule comes from the
//!   genuine algorithm, not a hand-written pattern.
//!
//! [`resources`] describes the fabric inventory (274,080 LUTs / 548,160
//! FFs / 2,520 DSPs on the ZCU102) and enforces that deployed bitstreams
//! fit the device.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bigint;
pub mod covert;
pub mod drc;
pub mod enclave;
pub mod resources;
pub mod ring_oscillator;
pub mod rsa;
pub mod tdc;
pub mod virus;
