//! Ring-oscillator voltage sensors — the crafted-circuit baseline.
//!
//! Zhao & Suh (S&P'18) sense on-chip voltage with combinational-loop ring
//! oscillators: an RO's period is proportional to its inverters' gate
//! delay, and gate delay shrinks as supply voltage rises. A counter
//! clocked by the RO and sampled at fixed intervals therefore reads out a
//! count whose variation tracks rail voltage.
//!
//! On a modern board the PDN stabilizer confines the rail to a few
//! millivolts of droop across the entire workload range, so the RO count
//! barely moves — this module is the "261x less variation" baseline that
//! Figure 2 compares AmpereBleed against. (RO circuits are also banned by
//! commercial clouds, e.g. the AWS F1 design-rule checks.)

use zynq_soc::{GaussianNoise, SimTime};

use crate::resources::{Bitstream, Region, Utilization};

/// Configuration of a [`RoBank`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoConfig {
    /// Number of ring oscillators distributed over the die.
    pub count: usize,
    /// Inverter stages per oscillator (odd).
    pub stages: u32,
    /// Oscillation frequency at nominal voltage, in MHz.
    pub nominal_freq_mhz: f64,
    /// Counter sampling window (paper baseline: 2 MHz sampling = 500 ns).
    pub sample_window: SimTime,
    /// Relative frequency change per relative voltage change
    /// (`df/f = sensitivity * dV/V`, first-order around nominal).
    pub voltage_sensitivity: f64,
    /// Nominal rail voltage the sensitivity is linearized around, volts.
    pub nominal_volts: f64,
    /// Counter jitter (1 sigma, in counts) per sample.
    pub jitter_counts: f64,
    /// Per-RO process-variation spread of the nominal frequency (1 sigma,
    /// relative).
    pub process_variation: f64,
}

impl Default for RoConfig {
    fn default() -> Self {
        RoConfig {
            count: 32,
            stages: 5,
            nominal_freq_mhz: 400.0,
            sample_window: SimTime::from_nanos(500),
            // First-order delay sensitivity of a LUT-based RO around the
            // 0.85 V operating point, calibrated against the measured
            // current-vs-RO variation ratio of the paper's Figure 2.
            voltage_sensitivity: 0.89,
            nominal_volts: 0.85,
            jitter_counts: 0.5,
            process_variation: 0.02,
        }
    }
}

/// A bank of ring oscillators with counters, distributed over the die to
/// average out spatial proximity to the aggressor (Section IV-A).
///
/// # Examples
///
/// ```
/// use fpga_fabric::ring_oscillator::{RoBank, RoConfig};
///
/// let mut bank = RoBank::new(RoConfig::default(), 3);
/// let at_high_v = bank.sample_mean_count(0.853);
/// let at_low_v = bank.sample_mean_count(0.848);
/// // Averaged over jitter the counts track voltage; single samples may not,
/// // so compare means of a few:
/// let hi: f64 = (0..50).map(|_| bank.sample_mean_count(0.853)).sum::<f64>() / 50.0;
/// let lo: f64 = (0..50).map(|_| bank.sample_mean_count(0.848)).sum::<f64>() / 50.0;
/// assert!(hi > lo);
/// # let _ = (at_high_v, at_low_v);
/// ```
#[derive(Debug)]
pub struct RoBank {
    config: RoConfig,
    /// Per-RO nominal frequency after process variation, MHz.
    ro_freq_mhz: Vec<f64>,
    regions: Vec<Region>,
    noise: GaussianNoise,
    samples_taken: u64,
}

impl RoBank {
    /// Instantiates a bank; `seed` fixes process variation and jitter.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`, `stages` is even, or the frequency /
    /// sensitivity parameters are not positive.
    pub fn new(config: RoConfig, seed: u64) -> Self {
        assert!(config.count > 0, "RO count must be non-zero");
        assert!(config.stages % 2 == 1, "RO needs an odd number of stages");
        assert!(config.nominal_freq_mhz > 0.0, "frequency must be positive");
        assert!(
            config.voltage_sensitivity > 0.0,
            "sensitivity must be positive"
        );
        assert!(
            config.nominal_volts > 0.0,
            "nominal voltage must be positive"
        );
        let mut noise = GaussianNoise::new(seed ^ 0x726F_6261); // "roba"
        let ro_freq_mhz: Vec<f64> = (0..config.count)
            .map(|_| config.nominal_freq_mhz * (1.0 + noise.sample(0.0, config.process_variation)))
            .collect();
        let nx = (config.count as f64).sqrt().ceil() as usize;
        let ny = config.count.div_ceil(nx);
        let regions: Vec<Region> = (0..config.count)
            .map(|i| Region::grid_cell(nx, ny, i % nx, i / nx))
            .collect();
        RoBank {
            config,
            ro_freq_mhz,
            regions,
            noise,
            samples_taken: 0,
        }
    }

    /// The bank configuration.
    pub fn config(&self) -> &RoConfig {
        &self.config
    }

    /// Number of counter samples taken so far.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// Placement of RO `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn region(&self, i: usize) -> Region {
        self.regions[i]
    }

    /// Samples every counter over one window at rail voltage `rail_v`,
    /// returning integer counts (what the attacker's readback logic sees).
    pub fn sample_counts(&mut self, rail_v: f64) -> Vec<u32> {
        self.samples_taken += 1;
        let window_s = self.config.sample_window.as_secs_f64();
        let dv_rel = (rail_v - self.config.nominal_volts) / self.config.nominal_volts;
        let freq_scale = 1.0 + self.config.voltage_sensitivity * dv_rel;
        let jitter = self.config.jitter_counts;
        let mut out = Vec::with_capacity(self.config.count);
        for &f_mhz in &self.ro_freq_mhz {
            let counts = f_mhz * 1e6 * freq_scale * window_s + self.noise.sample(0.0, jitter);
            out.push(counts.round().max(0.0) as u32);
        }
        out
    }

    /// Mean counter value across the bank for one sampling window.
    pub fn sample_mean_count(&mut self, rail_v: f64) -> f64 {
        let counts = self.sample_counts(rail_v);
        counts.iter().map(|&c| c as f64).sum::<f64>() / counts.len() as f64
    }

    /// Samples the bank with *local* IR-drop hotspots in addition to the
    /// global rail voltage: each hotspot `(region, droop_v)` depresses a
    /// nearby RO's supply by `droop_v * d0 / (d + d0)` where `d` is the
    /// center distance and `d0 = 0.1` die units.
    ///
    /// This models the spatial dependence the paper's setup averages away
    /// by distributing ROs "throughout the FPGA board" — an RO adjacent to
    /// the aggressor sees several times the droop of a far one.
    pub fn sample_counts_spatial(&mut self, rail_v: f64, hotspots: &[(Region, f64)]) -> Vec<u32> {
        const D0: f64 = 0.1;
        self.samples_taken += 1;
        let window_s = self.config.sample_window.as_secs_f64();
        let jitter = self.config.jitter_counts;
        let regions = self.regions.clone();
        let mut out = Vec::with_capacity(self.config.count);
        for (i, &f_mhz) in self.ro_freq_mhz.iter().enumerate() {
            let local_droop: f64 = hotspots
                .iter()
                .map(|(region, droop_v)| {
                    let d = regions[i].distance_to(region);
                    droop_v * D0 / (d + D0)
                })
                .sum();
            let v = rail_v - local_droop;
            let dv_rel = (v - self.config.nominal_volts) / self.config.nominal_volts;
            let freq_scale = 1.0 + self.config.voltage_sensitivity * dv_rel;
            let counts = f_mhz * 1e6 * freq_scale * window_s + self.noise.sample(0.0, jitter);
            out.push(counts.round().max(0.0) as u32);
        }
        out
    }

    /// Resource utilization of the deployed bank: each RO is `stages` LUTs
    /// plus a 32-bit counter.
    pub fn bitstream(&self) -> Bitstream {
        let n = self.config.count as u64;
        Bitstream::new(
            "ro-sensor-bank",
            Utilization {
                luts: n * (self.config.stages as u64 + 8),
                ffs: n * 32,
                dsps: 0,
                bram_kb: 0,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(bank: &mut RoBank, v: f64, n: usize) -> f64 {
        (0..n).map(|_| bank.sample_mean_count(v)).sum::<f64>() / n as f64
    }

    #[test]
    fn counts_increase_with_voltage() {
        let mut bank = RoBank::new(RoConfig::default(), 1);
        let lo = mean_of(&mut bank, 0.845, 200);
        let hi = mean_of(&mut bank, 0.855, 200);
        assert!(hi > lo, "RO count must rise with voltage ({hi} vs {lo})");
    }

    #[test]
    fn nominal_count_matches_window() {
        // 400 MHz over 500 ns = 200 counts.
        let mut bank = RoBank::new(
            RoConfig {
                process_variation: 0.0,
                jitter_counts: 0.0,
                ..RoConfig::default()
            },
            0,
        );
        let counts = bank.sample_counts(0.85);
        assert!(counts.iter().all(|&c| c == 200), "{counts:?}");
    }

    #[test]
    fn stabilized_band_variation_is_sub_percent() {
        // The whole stabilizer band (0.825-0.876 V) moves counts by only a
        // few percent; the millivolt-scale droop of a real workload moves
        // them by well under 1% — the Figure 2 observation.
        let mut bank = RoBank::new(RoConfig::default(), 2);
        let idle = mean_of(&mut bank, 0.8520, 500);
        let busy = mean_of(&mut bank, 0.8466, 500); // 5.4 mV droop
        let rel = (idle - busy) / idle;
        assert!(rel > 0.0);
        assert!(rel < 0.01, "relative RO variation {rel} too large");
    }

    #[test]
    fn sensitivity_scales_response() {
        let mk = |k: f64| {
            RoBank::new(
                RoConfig {
                    voltage_sensitivity: k,
                    jitter_counts: 0.0,
                    process_variation: 0.0,
                    ..RoConfig::default()
                },
                0,
            )
        };
        let mut weak = mk(0.5);
        let mut strong = mk(2.0);
        let dv = 0.87;
        let weak_delta = weak.sample_mean_count(dv) - weak.sample_mean_count(0.85);
        let strong_delta = strong.sample_mean_count(dv) - strong.sample_mean_count(0.85);
        assert!(strong_delta > 2.0 * weak_delta);
    }

    #[test]
    fn jitter_makes_single_samples_noisy() {
        let mut bank = RoBank::new(RoConfig::default(), 9);
        let a = bank.sample_counts(0.85);
        let b = bank.sample_counts(0.85);
        assert_ne!(a, b, "counter jitter must vary between samples");
        assert_eq!(bank.samples_taken(), 2);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = RoBank::new(RoConfig::default(), 33);
        let mut b = RoBank::new(RoConfig::default(), 33);
        for _ in 0..10 {
            assert_eq!(a.sample_counts(0.851), b.sample_counts(0.851));
        }
    }

    #[test]
    fn spatial_hotspot_depresses_nearby_ro() {
        let mut bank = RoBank::new(
            RoConfig {
                jitter_counts: 0.0,
                process_variation: 0.0,
                ..RoConfig::default()
            },
            0,
        );
        // Hotspot on top of RO 0's cell; 10 mV of local droop at d=0.
        let hotspot = bank.region(0);
        let counts = bank.sample_counts_spatial(0.85, &[(hotspot, 0.010)]);
        let near = counts[0];
        let far = counts[31];
        assert!(
            near < far,
            "RO next to the aggressor must read lower ({near} vs {far})"
        );
        // Without hotspots the spatial sampler matches the plain one.
        let uniform = bank.sample_counts_spatial(0.85, &[]);
        assert!(uniform.iter().all(|&c| c == uniform[0]));
    }

    #[test]
    fn distributed_placement() {
        let bank = RoBank::new(RoConfig::default(), 0);
        let d = bank.region(0).distance_to(&bank.region(31));
        assert!(d > 0.5);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_stage_count_rejected() {
        let _ = RoBank::new(
            RoConfig {
                stages: 4,
                ..RoConfig::default()
            },
            0,
        );
    }

    #[test]
    fn bitstream_utilization_scales_with_count() {
        let bank = RoBank::new(RoConfig::default(), 0);
        let bs = bank.bitstream();
        assert_eq!(bs.utilization.ffs, 32 * 32);
        assert!(bs.utilization.luts > 0);
    }

    sim_rt::prop_check! {
        fn counts_are_finite_and_positive(v in 0.7f64..1.0, seed in 0u64..100) {
            let mut bank = RoBank::new(RoConfig::default(), seed);
            for c in bank.sample_counts(v) {
                assert!(c > 0);
                assert!(c < 10_000);
            }
        }
    }
}
