//! Time-to-digital-converter (TDC) voltage sensor — the modern
//! crafted-circuit baseline.
//!
//! After clouds banned combinational loops (ring oscillators), crafted
//! sensors moved to delay lines: a clock edge races through a carry chain
//! and the number of stages it traverses in one clock period is latched as
//! a thermometer code. Supply-voltage droop slows the stages, so the
//! latched tap count measures voltage — with a *quantized* output (one
//! tap ≈ a fixed delay step) and higher sample rates than an RO counter.
//! RDS (CHES'23), 1LUTSensor (CHES'24) and VITI (CHES'22) are refinements
//! of this idea; all still require fabric co-residence, which AmpereBleed
//! does not.
//!
//! On a stabilized PDN the millivolt-scale droop moves the race by only a
//! fraction of a tap, so a TDC sees even less than an RO bank — this
//! module exists to show the crafted-circuit dead end is not specific to
//! ring oscillators.

use zynq_soc::{GaussianNoise, SimTime};

use crate::resources::{Bitstream, Utilization};

/// Configuration of a [`TdcSensor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TdcConfig {
    /// Number of delay-line taps (carry-chain stages).
    pub taps: u32,
    /// Nominal per-tap delay at the linearization voltage, picoseconds.
    pub tap_delay_ps: f64,
    /// Sampling clock period (the race window).
    pub clock: SimTime,
    /// Relative delay change per relative voltage change
    /// (`d(delay)/delay = -sensitivity * dV/V`).
    pub voltage_sensitivity: f64,
    /// Voltage the delay model is linearized around, volts.
    pub nominal_volts: f64,
    /// Per-sample timing jitter (1 sigma, in taps).
    pub jitter_taps: f64,
}

impl Default for TdcConfig {
    fn default() -> Self {
        TdcConfig {
            taps: 256,
            // A UltraScale+ CARRY8 stage is ~15 ps per bit.
            tap_delay_ps: 15.0,
            // 300 MHz-class sampling clock: ~3 ns race window lands the
            // edge around tap 200 of the 256-tap line at nominal voltage.
            clock: SimTime::from_nanos(3),
            voltage_sensitivity: 1.3,
            nominal_volts: 0.85,
            jitter_taps: 0.6,
        }
    }
}

/// A carry-chain TDC with thermometer-code readout.
///
/// # Examples
///
/// ```
/// use fpga_fabric::tdc::{TdcConfig, TdcSensor};
///
/// let mut tdc = TdcSensor::new(TdcConfig::default(), 1);
/// let hi: f64 = (0..100).map(|_| tdc.sample(0.853) as f64).sum::<f64>() / 100.0;
/// let lo: f64 = (0..100).map(|_| tdc.sample(0.845) as f64).sum::<f64>() / 100.0;
/// assert!(hi >= lo); // higher voltage -> faster stages -> more taps
/// ```
#[derive(Debug)]
pub struct TdcSensor {
    config: TdcConfig,
    noise: GaussianNoise,
    samples_taken: u64,
}

impl TdcSensor {
    /// Instantiates the sensor; `seed` fixes the jitter stream.
    ///
    /// # Panics
    ///
    /// Panics if `taps == 0` or timing parameters are not positive.
    pub fn new(config: TdcConfig, seed: u64) -> Self {
        assert!(config.taps > 0, "tap count must be non-zero");
        assert!(config.tap_delay_ps > 0.0, "tap delay must be positive");
        assert!(
            config.nominal_volts > 0.0,
            "nominal voltage must be positive"
        );
        TdcSensor {
            config,
            noise: GaussianNoise::new(seed ^ 0x7464_6373), // "tdcs"
            samples_taken: 0,
        }
    }

    /// The sensor configuration.
    pub fn config(&self) -> &TdcConfig {
        &self.config
    }

    /// Number of samples taken.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// Latches one thermometer code at rail voltage `rail_v`: how many
    /// taps the edge traverses within the race window (clipped to the
    /// physical line length).
    pub fn sample(&mut self, rail_v: f64) -> u32 {
        self.samples_taken += 1;
        let dv_rel = (rail_v - self.config.nominal_volts) / self.config.nominal_volts;
        // Lower voltage -> longer per-tap delay -> fewer taps traversed.
        let delay_ps = self.config.tap_delay_ps * (1.0 - self.config.voltage_sensitivity * dv_rel);
        let window_ps = self.config.clock.as_nanos() as f64 * 1_000.0;
        let taps = window_ps / delay_ps + self.noise.sample(0.0, self.config.jitter_taps);
        taps.round().clamp(0.0, self.config.taps as f64) as u32
    }

    /// Mean tap count over `n` consecutive samples at a fixed voltage.
    pub fn sample_mean(&mut self, rail_v: f64, n: usize) -> f64 {
        (0..n).map(|_| self.sample(rail_v) as f64).sum::<f64>() / n.max(1) as f64
    }

    /// Resource utilization: the carry chain plus capture flip-flops.
    pub fn bitstream(&self) -> Bitstream {
        Bitstream::new(
            "tdc-sensor",
            Utilization {
                luts: self.config.taps as u64 / 8 + 16,
                ffs: self.config.taps as u64,
                dsps: 0,
                bram_kb: 0,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tap_count_tracks_voltage() {
        let mut tdc = TdcSensor::new(TdcConfig::default(), 2);
        let hi = tdc.sample_mean(0.86, 500);
        let lo = tdc.sample_mean(0.84, 500);
        assert!(hi > lo, "{hi} vs {lo}");
    }

    #[test]
    fn output_is_clipped_to_line_length() {
        let mut tdc = TdcSensor::new(TdcConfig::default(), 3);
        // Absurdly high voltage: stages nearly instant, but the line has
        // only 256 taps.
        for _ in 0..50 {
            assert!(tdc.sample(2.0) <= 256);
        }
        // Very low voltage: the slowed edge traverses only a small prefix
        // of the line.
        let mut slowed = TdcSensor::new(TdcConfig::default(), 3);
        let crawl = slowed.sample(0.2);
        let nominal = slowed.sample(0.85);
        assert!(
            (crawl as f64) < nominal as f64 * 0.6,
            "{crawl} vs {nominal}"
        );
    }

    #[test]
    fn stabilized_droop_is_a_fraction_of_a_tap() {
        // 5.4 mV of droop: the mean code moves by less than 2 taps out of
        // ~220 unclipped — the same dead end as the RO baseline.
        let cfg = TdcConfig {
            taps: 1024, // generous line so nothing clips
            ..TdcConfig::default()
        };
        let mut tdc = TdcSensor::new(cfg, 4);
        let idle = tdc.sample_mean(0.8520, 2_000);
        let busy = tdc.sample_mean(0.8466, 2_000);
        let delta = idle - busy;
        assert!(delta > 0.0);
        assert!(delta < 3.0, "droop moved the code by {delta} taps");
        let rel = delta / idle;
        assert!(rel < 0.012, "relative TDC variation {rel}");
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = TdcSensor::new(TdcConfig::default(), 9);
        let mut b = TdcSensor::new(TdcConfig::default(), 9);
        for _ in 0..20 {
            assert_eq!(a.sample(0.85), b.sample(0.85));
        }
        assert_eq!(a.samples_taken(), 20);
    }

    #[test]
    fn bitstream_scales_with_taps() {
        let tdc = TdcSensor::new(TdcConfig::default(), 0);
        assert_eq!(tdc.bitstream().utilization.ffs, 256);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_taps_rejected() {
        let cfg = TdcConfig {
            taps: 0,
            ..TdcConfig::default()
        };
        let _ = TdcSensor::new(cfg, 0);
    }
}
