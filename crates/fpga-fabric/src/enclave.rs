//! FPGA trusted-execution-environment (TEE) victim circuit.
//!
//! The paper's future work asks whether on-chip current sensors can attack
//! TEEs implemented on FPGAs (e.g. SGX-FPGA, DAC'21): an enclave's
//! bitstream is attested and its memory interface is isolated, but its
//! *power draw* still flows through the board's monitored rails. This
//! module models such an enclave running a small set of confidential
//! workload types; the `amperebleed::tee` attack shows an unprivileged
//! observer can classify which task the enclave is executing.

use std::sync::atomic::{AtomicU8, Ordering};

use zynq_soc::{hash01, PowerDomain, PowerLoad, SimTime};

use crate::resources::{Bitstream, Utilization};

/// Confidential workload types an enclave might run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EnclaveTask {
    /// Waiting for requests.
    Idle,
    /// Bulk authenticated encryption (AES-GCM pipeline).
    AesGcm,
    /// Hashing (SHA-3 sponge).
    Sha3,
    /// Private matrix multiplication (e.g. confidential ML layer).
    MatMul,
    /// Digital signatures (ECDSA scalar multiplication).
    Signature,
}

impl EnclaveTask {
    /// All task types.
    pub const ALL: [EnclaveTask; 5] = [
        EnclaveTask::Idle,
        EnclaveTask::AesGcm,
        EnclaveTask::Sha3,
        EnclaveTask::MatMul,
        EnclaveTask::Signature,
    ];

    fn encode(self) -> u8 {
        Self::ALL.iter().position(|&t| t == self).expect("in ALL") as u8
    }

    fn decode(v: u8) -> EnclaveTask {
        Self::ALL[(v as usize).min(Self::ALL.len() - 1)]
    }

    /// Mean fabric current of the task's datapath, mA.
    fn fpga_ma(self) -> f64 {
        match self {
            EnclaveTask::Idle => 60.0,
            EnclaveTask::AesGcm => 210.0,
            EnclaveTask::Sha3 => 180.0,
            EnclaveTask::MatMul => 520.0,
            EnclaveTask::Signature => 320.0,
        }
    }

    /// DDR current of the task's (isolated) memory traffic, mA.
    fn ddr_ma(self) -> f64 {
        match self {
            EnclaveTask::Idle => 0.0,
            EnclaveTask::AesGcm => 45.0,
            EnclaveTask::Sha3 => 12.0,
            EnclaveTask::MatMul => 120.0,
            EnclaveTask::Signature => 8.0,
        }
    }

    /// Burst period of the task's compute pattern, microseconds.
    fn burst_period_us(self) -> u64 {
        match self {
            EnclaveTask::Idle => 50_000,
            EnclaveTask::AesGcm => 2_000,
            EnclaveTask::Sha3 => 5_000,
            EnclaveTask::MatMul => 20_000,
            EnclaveTask::Signature => 12_000,
        }
    }

    /// Relative burst modulation depth.
    fn burst_depth(self) -> f64 {
        match self {
            EnclaveTask::Idle => 0.02,
            EnclaveTask::AesGcm => 0.10,
            EnclaveTask::Sha3 => 0.18,
            EnclaveTask::MatMul => 0.35,
            EnclaveTask::Signature => 0.25,
        }
    }
}

impl std::fmt::Display for EnclaveTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EnclaveTask::Idle => "idle",
            EnclaveTask::AesGcm => "aes-gcm",
            EnclaveTask::Sha3 => "sha3",
            EnclaveTask::MatMul => "matmul",
            EnclaveTask::Signature => "signature",
        };
        f.write_str(s)
    }
}

/// The enclave circuit: attested, logically isolated, electrically loud.
///
/// # Examples
///
/// ```
/// use fpga_fabric::enclave::{EnclaveCircuit, EnclaveTask};
/// use zynq_soc::{PowerDomain, PowerLoad, SimTime};
///
/// let enclave = EnclaveCircuit::new(5);
/// enclave.run(EnclaveTask::MatMul);
/// let busy = enclave.current_ma(SimTime::from_ms(2), PowerDomain::FpgaLogic);
/// enclave.run(EnclaveTask::Idle);
/// let idle = enclave.current_ma(SimTime::from_ms(2), PowerDomain::FpgaLogic);
/// assert!(busy > idle);
/// ```
#[derive(Debug)]
pub struct EnclaveCircuit {
    task: AtomicU8,
    seed: u64,
}

impl EnclaveCircuit {
    /// Instantiates the enclave, initially idle.
    pub fn new(seed: u64) -> Self {
        EnclaveCircuit {
            task: AtomicU8::new(EnclaveTask::Idle.encode()),
            seed,
        }
    }

    /// Switches the enclave to a task (the enclave owner's request API —
    /// invisible to the attacker).
    pub fn run(&self, task: EnclaveTask) {
        self.task.store(task.encode(), Ordering::Release);
        zynq_soc::invalidate_load_caches();
    }

    /// The task currently executing.
    pub fn current_task(&self) -> EnclaveTask {
        EnclaveTask::decode(self.task.load(Ordering::Acquire))
    }

    /// Resource utilization of the enclave region.
    pub fn bitstream(&self) -> Bitstream {
        Bitstream::new(
            "fpga-enclave",
            Utilization {
                luts: 45_000,
                ffs: 60_000,
                dsps: 220,
                bram_kb: 2_048,
            },
        )
        .encrypted()
    }
}

impl PowerLoad for EnclaveCircuit {
    fn current_ma(&self, t: SimTime, domain: PowerDomain) -> f64 {
        let task = self.current_task();
        let burst_bucket = t.as_micros() / task.burst_period_us();
        // Square-ish burst pattern: alternating heavy/light phases with a
        // touch of hash noise, characteristic per task.
        let phase_on = burst_bucket.is_multiple_of(2);
        let noise = (hash01(self.seed, 5, burst_bucket) - 0.5) * 0.04;
        let modulation = if phase_on {
            1.0 + task.burst_depth()
        } else {
            1.0 - task.burst_depth()
        } + noise;
        match domain {
            PowerDomain::FpgaLogic => task.fpga_ma() * modulation,
            PowerDomain::Ddr => task.ddr_ma() * modulation.max(0.0),
            _ => 0.0,
        }
    }

    fn label(&self) -> &str {
        "fpga-enclave"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_switching() {
        let e = EnclaveCircuit::new(1);
        assert_eq!(e.current_task(), EnclaveTask::Idle);
        e.run(EnclaveTask::Sha3);
        assert_eq!(e.current_task(), EnclaveTask::Sha3);
    }

    #[test]
    fn tasks_have_distinct_mean_currents() {
        let e = EnclaveCircuit::new(2);
        let mut means = Vec::new();
        for task in EnclaveTask::ALL {
            e.run(task);
            let mean: f64 = (0..500)
                .map(|k| e.current_ma(SimTime::from_us(k * 777), PowerDomain::FpgaLogic))
                .sum::<f64>()
                / 500.0;
            means.push(mean);
        }
        for i in 0..means.len() {
            for j in i + 1..means.len() {
                assert!(
                    (means[i] - means[j]).abs() > 10.0,
                    "{:?} and {:?} overlap",
                    EnclaveTask::ALL[i],
                    EnclaveTask::ALL[j]
                );
            }
        }
    }

    #[test]
    fn burst_texture_differs_by_task() {
        let e = EnclaveCircuit::new(3);
        e.run(EnclaveTask::AesGcm);
        let a1 = e.current_ma(SimTime::from_us(1_000), PowerDomain::FpgaLogic);
        let a2 = e.current_ma(SimTime::from_us(3_000), PowerDomain::FpgaLogic);
        assert_ne!(a1, a2, "2 ms bursts alternate within 4 ms");
        e.run(EnclaveTask::MatMul);
        let m1 = e.current_ma(SimTime::from_us(1_000), PowerDomain::FpgaLogic);
        let m2 = e.current_ma(SimTime::from_us(3_000), PowerDomain::FpgaLogic);
        assert_eq!(
            (m1 > 0.0),
            (m2 > 0.0),
            "20 ms bursts are stable within 4 ms"
        );
    }

    #[test]
    fn idle_enclave_is_quiet_on_ddr() {
        let e = EnclaveCircuit::new(4);
        assert_eq!(e.current_ma(SimTime::ZERO, PowerDomain::Ddr), 0.0);
        assert_eq!(e.current_ma(SimTime::ZERO, PowerDomain::FullPowerCpu), 0.0);
    }

    #[test]
    fn bitstream_is_attested_encrypted() {
        assert!(EnclaveCircuit::new(0).bitstream().encrypted);
    }

    #[test]
    fn task_display_names() {
        assert_eq!(EnclaveTask::AesGcm.to_string(), "aes-gcm");
        assert_eq!(EnclaveTask::MatMul.to_string(), "matmul");
    }
}
