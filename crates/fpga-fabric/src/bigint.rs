//! Fixed-width 1024-bit unsigned integer arithmetic.
//!
//! The RSA-1024 victim circuit ([`crate::rsa`]) computes genuine modular
//! exponentiations, so its switching-activity schedule is derived from the
//! real Square-and-Multiply algorithm rather than a synthetic pattern.
//! This module provides the minimal big-integer kernel that requires:
//! comparison, modular addition, shift-add modular multiplication, and
//! LSB-first modular exponentiation (the two-multiplier formulation used
//! by the victim hardware).

/// Number of 64-bit limbs in a [`U1024`].
pub const LIMBS: usize = 16;

/// Number of bits in a [`U1024`].
pub const BITS: usize = LIMBS * 64;

/// A 1024-bit unsigned integer (little-endian limbs).
///
/// # Examples
///
/// ```
/// use fpga_fabric::bigint::U1024;
///
/// let a = U1024::from_u64(7);
/// let m = U1024::from_u64(13);
/// // 7^4 mod 13 = 2401 mod 13 = 9
/// let r = a.mod_exp(&U1024::from_u64(4), &m);
/// assert_eq!(r, U1024::from_u64(9));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct U1024 {
    limbs: [u64; LIMBS],
}

impl Ord for U1024 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Numeric comparison: most-significant limb first.
        for i in (0..LIMBS).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }
}

impl PartialOrd for U1024 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl U1024 {
    /// Zero.
    pub const ZERO: U1024 = U1024 { limbs: [0; LIMBS] };

    /// One.
    pub const ONE: U1024 = {
        let mut limbs = [0u64; LIMBS];
        limbs[0] = 1;
        U1024 { limbs }
    };

    /// Creates a value from a `u64`.
    pub const fn from_u64(v: u64) -> Self {
        let mut limbs = [0u64; LIMBS];
        limbs[0] = v;
        U1024 { limbs }
    }

    /// Creates a value from little-endian limbs.
    pub const fn from_limbs(limbs: [u64; LIMBS]) -> Self {
        U1024 { limbs }
    }

    /// The little-endian limbs.
    pub const fn limbs(&self) -> &[u64; LIMBS] {
        &self.limbs
    }

    /// Deterministic pseudo-random value from a seed (splitmix64 stream).
    pub fn random(seed: u64) -> Self {
        let mut z = seed;
        let mut limbs = [0u64; LIMBS];
        for limb in &mut limbs {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *limb = x ^ (x >> 31);
        }
        U1024 { limbs }
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Bit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 1024`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < BITS, "bit index out of range");
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 1024`.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        assert!(i < BITS, "bit index out of range");
        let mask = 1u64 << (i % 64);
        if value {
            self.limbs[i / 64] |= mask;
        } else {
            self.limbs[i / 64] &= !mask;
        }
    }

    /// Population count — the Hamming weight of the value. For an RSA
    /// exponent this is exactly what the Figure 4 attack recovers.
    pub fn hamming_weight(&self) -> u32 {
        self.limbs.iter().map(|l| l.count_ones()).sum()
    }

    /// Index of the highest set bit, or `None` for zero.
    pub fn highest_bit(&self) -> Option<usize> {
        for (i, &l) in self.limbs.iter().enumerate().rev() {
            if l != 0 {
                return Some(i * 64 + 63 - l.leading_zeros() as usize);
            }
        }
        None
    }

    /// Wrapping addition, returning the sum and the carry out.
    pub fn overflowing_add(&self, other: &U1024) -> (U1024, bool) {
        let mut out = [0u64; LIMBS];
        let mut carry = false;
        for (i, slot) in out.iter_mut().enumerate() {
            let (s1, c1) = self.limbs[i].overflowing_add(other.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            *slot = s2;
            carry = c1 | c2;
        }
        (U1024 { limbs: out }, carry)
    }

    /// Wrapping subtraction, returning the difference and the borrow out.
    pub fn overflowing_sub(&self, other: &U1024) -> (U1024, bool) {
        let mut out = [0u64; LIMBS];
        let mut borrow = false;
        for (i, slot) in out.iter_mut().enumerate() {
            let (d1, b1) = self.limbs[i].overflowing_sub(other.limbs[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            *slot = d2;
            borrow = b1 | b2;
        }
        (U1024 { limbs: out }, borrow)
    }

    /// Left shift by one bit, returning the shifted value and the bit
    /// shifted out.
    pub fn shl1(&self) -> (U1024, bool) {
        let mut out = [0u64; LIMBS];
        let mut carry = 0u64;
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = (self.limbs[i] << 1) | carry;
            carry = self.limbs[i] >> 63;
        }
        (U1024 { limbs: out }, carry == 1)
    }

    /// Modular addition `(self + other) mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero; operands must already be reduced (`< m`).
    pub fn mod_add(&self, other: &U1024, m: &U1024) -> U1024 {
        assert!(!m.is_zero(), "modulus must be non-zero");
        debug_assert!(self < m && other < m, "operands must be reduced");
        let (sum, carry) = self.overflowing_add(other);
        if carry || &sum >= m {
            sum.overflowing_sub(m).0
        } else {
            sum
        }
    }

    /// Modular doubling `(2 * self) mod m` for a reduced operand.
    fn mod_double(&self, m: &U1024) -> U1024 {
        let (d, carry) = self.shl1();
        if carry || &d >= m {
            d.overflowing_sub(m).0
        } else {
            d
        }
    }

    /// Modular multiplication `(self * other) mod m` by binary
    /// double-and-add — the shift-add datapath a compact hardware modular
    /// multiplier implements.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero; operands must already be reduced (`< m`).
    pub fn mod_mul(&self, other: &U1024, m: &U1024) -> U1024 {
        assert!(!m.is_zero(), "modulus must be non-zero");
        debug_assert!(self < m && other < m, "operands must be reduced");
        let mut acc = U1024::ZERO;
        let top = match other.highest_bit() {
            Some(b) => b,
            None => return U1024::ZERO,
        };
        // MSB-first double-and-add.
        for i in (0..=top).rev() {
            acc = acc.mod_double(m);
            if other.bit(i) {
                acc = acc.mod_add(self, m);
            }
        }
        acc
    }

    /// LSB-first modular exponentiation `self^exp mod m` — the
    /// two-multiplier Square-and-Multiply schedule of the victim circuit:
    /// every iteration squares; iterations whose exponent bit is 1 also
    /// multiply (both multiplier modules active).
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero. `self` must be reduced (`< m`).
    pub fn mod_exp(&self, exp: &U1024, m: &U1024) -> U1024 {
        assert!(!m.is_zero(), "modulus must be non-zero");
        if m == &U1024::ONE {
            return U1024::ZERO;
        }
        let mut result = U1024::ONE;
        let mut square = *self;
        let top = exp.highest_bit().unwrap_or(0);
        for i in 0..=top {
            if exp.bit(i) {
                result = result.mod_mul(&square, m);
            }
            square = square.mod_mul(&square, m);
        }
        result
    }

    /// Reduces an arbitrary value modulo `m` (binary long division).
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn reduce(&self, m: &U1024) -> U1024 {
        assert!(!m.is_zero(), "modulus must be non-zero");
        if self < m {
            return *self;
        }
        let mut rem = U1024::ZERO;
        let top = self.highest_bit().expect("self >= m > 0");
        for i in (0..=top).rev() {
            rem = rem.shl1().0;
            if self.bit(i) {
                rem.limbs[0] |= 1;
            }
            if &rem >= m {
                rem = rem.overflowing_sub(m).0;
            }
        }
        rem
    }
}

impl U1024 {
    /// Big-endian byte representation (128 bytes).
    pub fn to_be_bytes(&self) -> [u8; LIMBS * 8] {
        let mut out = [0u8; LIMBS * 8];
        for (i, &limb) in self.limbs.iter().rev().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&limb.to_be_bytes());
        }
        out
    }

    /// Constructs a value from 128 big-endian bytes.
    pub fn from_be_bytes(bytes: [u8; LIMBS * 8]) -> Self {
        let mut limbs = [0u64; LIMBS];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let start = (LIMBS - 1 - i) * 8;
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[start..start + 8]);
            *limb = u64::from_be_bytes(chunk);
        }
        U1024 { limbs }
    }

    /// Parses a hexadecimal string (with or without a `0x` prefix).
    ///
    /// # Errors
    ///
    /// Returns [`ParseU1024Error`] for empty input, non-hex digits, or
    /// more than 256 hex digits.
    pub fn from_hex(s: &str) -> std::result::Result<Self, ParseU1024Error> {
        let digits = s
            .strip_prefix("0x")
            .or_else(|| s.strip_prefix("0X"))
            .unwrap_or(s);
        if digits.is_empty() {
            return Err(ParseU1024Error::Empty);
        }
        if digits.len() > LIMBS * 16 {
            return Err(ParseU1024Error::TooLong(digits.len()));
        }
        let mut value = U1024::ZERO;
        for c in digits.chars() {
            let nibble = c.to_digit(16).ok_or(ParseU1024Error::InvalidDigit(c))? as u64;
            // value = value * 16 + nibble, via four shifts.
            for _ in 0..4 {
                value = value.shl1().0;
            }
            value.limbs[0] |= nibble;
        }
        Ok(value)
    }
}

/// Error parsing a [`U1024`] from hex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseU1024Error {
    /// The input had no digits.
    Empty,
    /// A character was not a hex digit.
    InvalidDigit(char),
    /// The input exceeds 1024 bits.
    TooLong(usize),
}

impl std::fmt::Display for ParseU1024Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseU1024Error::Empty => write!(f, "empty hex string"),
            ParseU1024Error::InvalidDigit(c) => write!(f, "invalid hex digit {c:?}"),
            ParseU1024Error::TooLong(n) => write!(f, "{n} hex digits exceed 1024 bits"),
        }
    }
}

impl std::error::Error for ParseU1024Error {}

impl std::str::FromStr for U1024 {
    type Err = ParseU1024Error;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        U1024::from_hex(s)
    }
}

impl From<u64> for U1024 {
    fn from(v: u64) -> Self {
        U1024::from_u64(v)
    }
}

impl std::fmt::Display for U1024 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Hex rendering, most significant limb first, trimmed.
        let mut started = false;
        for &l in self.limbs.iter().rev() {
            if started {
                write!(f, "{l:016x}")?;
            } else if l != 0 {
                write!(f, "{l:x}")?;
                started = true;
            }
        }
        if !started {
            f.write_str("0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(v: u64) -> U1024 {
        U1024::from_u64(v)
    }

    #[test]
    fn constants() {
        assert!(U1024::ZERO.is_zero());
        assert!(!U1024::ONE.is_zero());
        assert_eq!(U1024::ONE.hamming_weight(), 1);
        assert_eq!(U1024::ZERO.highest_bit(), None);
        assert_eq!(U1024::ONE.highest_bit(), Some(0));
    }

    #[test]
    fn bit_get_set_round_trip() {
        let mut v = U1024::ZERO;
        for i in [0usize, 1, 63, 64, 100, 1023] {
            v.set_bit(i, true);
            assert!(v.bit(i));
        }
        assert_eq!(v.hamming_weight(), 6);
        v.set_bit(100, false);
        assert!(!v.bit(100));
        assert_eq!(v.hamming_weight(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_index_checked() {
        let _ = U1024::ZERO.bit(1024);
    }

    #[test]
    fn add_sub_round_trip() {
        let a = U1024::random(1);
        let b = U1024::random(2);
        let (sum, _) = a.overflowing_add(&b);
        let (diff, _) = sum.overflowing_sub(&b);
        assert_eq!(diff, a);
    }

    #[test]
    fn carry_propagates_across_limbs() {
        let mut a = U1024::ZERO;
        a.limbs[0] = u64::MAX;
        let (sum, carry) = a.overflowing_add(&U1024::ONE);
        assert!(!carry);
        assert_eq!(sum.limbs[0], 0);
        assert_eq!(sum.limbs[1], 1);
    }

    #[test]
    fn full_overflow_sets_carry() {
        let max = U1024::from_limbs([u64::MAX; LIMBS]);
        let (sum, carry) = max.overflowing_add(&U1024::ONE);
        assert!(carry);
        assert!(sum.is_zero());
    }

    #[test]
    fn shl1_moves_top_bit_out() {
        let mut v = U1024::ZERO;
        v.set_bit(1023, true);
        let (shifted, out) = v.shl1();
        assert!(out);
        assert!(shifted.is_zero());
    }

    #[test]
    fn mod_mul_matches_u128() {
        let m = small(1_000_003);
        for (a, b) in [(0u64, 5), (123, 456), (999_999, 999_999), (1, 1_000_002)] {
            let got = small(a).mod_mul(&small(b), &m);
            let expect = (a as u128 * b as u128 % 1_000_003) as u64;
            assert_eq!(got, small(expect), "{a} * {b}");
        }
    }

    #[test]
    fn mod_exp_matches_reference() {
        // 5^117 mod 1009, computed independently.
        let mut expect = 1u64;
        for _ in 0..117 {
            expect = expect * 5 % 1009;
        }
        assert_eq!(small(5).mod_exp(&small(117), &small(1009)), small(expect));
    }

    #[test]
    fn fermat_little_theorem() {
        // a^(p-1) = 1 mod p for prime p not dividing a.
        let p = small(104_729); // 10000th prime
        for a in [2u64, 3, 65_537] {
            assert_eq!(small(a).mod_exp(&small(104_728), &p), U1024::ONE);
        }
    }

    #[test]
    fn mod_exp_edge_cases() {
        let m = small(97);
        assert_eq!(small(5).mod_exp(&U1024::ZERO, &m), U1024::ONE);
        assert_eq!(small(5).mod_exp(&U1024::ONE, &m), small(5));
        assert_eq!(small(5).mod_exp(&small(10), &U1024::ONE), U1024::ZERO);
        assert_eq!(U1024::ZERO.mod_exp(&small(10), &m), U1024::ZERO);
    }

    #[test]
    fn reduce_matches_remainder() {
        let m = small(12_345);
        for v in [0u64, 1, 12_344, 12_345, 99_999_999] {
            assert_eq!(small(v).reduce(&m), small(v % 12_345));
        }
        // A full-width value reduces below the modulus.
        let big = U1024::random(9);
        let m = U1024::random(10).reduce(&U1024::from_limbs({
            let mut l = [0u64; LIMBS];
            l[8] = 1; // 2^512
            l
        }));
        if !m.is_zero() {
            let r = big.reduce(&m);
            assert!(r < m);
        }
    }

    #[test]
    fn full_width_mod_exp_is_consistent() {
        // (a^e1 * a^e2) mod m == a^(e1+e2) mod m for random 1024-bit a, m.
        let mut m = U1024::random(100);
        m.set_bit(0, true); // odd modulus
        m.set_bit(1023, true); // full width
        let a = U1024::random(101).reduce(&m);
        let e1 = small(37);
        let e2 = small(21);
        let lhs = a.mod_exp(&e1, &m).mod_mul(&a.mod_exp(&e2, &m), &m);
        let rhs = a.mod_exp(&small(58), &m);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn display_hex() {
        assert_eq!(U1024::ZERO.to_string(), "0");
        assert_eq!(small(0xdead_beef).to_string(), "deadbeef");
        let mut v = small(1);
        v.set_bit(64, true);
        assert_eq!(v.to_string(), "10000000000000001");
    }

    #[test]
    fn byte_round_trip() {
        let v = U1024::random(77);
        assert_eq!(U1024::from_be_bytes(v.to_be_bytes()), v);
        // Endianness: a small value's bytes sit at the tail.
        let one = U1024::ONE.to_be_bytes();
        assert_eq!(one[127], 1);
        assert!(one[..127].iter().all(|&b| b == 0));
    }

    #[test]
    fn hex_parse_round_trip() {
        for v in [
            U1024::ZERO,
            U1024::ONE,
            small(0xdead_beef),
            U1024::random(3),
        ] {
            let parsed = U1024::from_hex(&v.to_string()).unwrap();
            assert_eq!(parsed, v);
        }
        assert_eq!("0xff".parse::<U1024>().unwrap(), small(255));
        assert_eq!("0XFF".parse::<U1024>().unwrap(), small(255));
    }

    #[test]
    fn hex_parse_errors() {
        assert_eq!(U1024::from_hex(""), Err(ParseU1024Error::Empty));
        assert_eq!(U1024::from_hex("0x"), Err(ParseU1024Error::Empty));
        assert_eq!(
            U1024::from_hex("xyz"),
            Err(ParseU1024Error::InvalidDigit('x'))
        );
        let too_long = "f".repeat(257);
        assert_eq!(
            U1024::from_hex(&too_long),
            Err(ParseU1024Error::TooLong(257))
        );
        assert!(ParseU1024Error::Empty.to_string().contains("empty"));
    }

    #[test]
    fn full_width_hex_parses() {
        let max_hex = "f".repeat(256);
        let v = U1024::from_hex(&max_hex).unwrap();
        assert_eq!(v, U1024::from_limbs([u64::MAX; LIMBS]));
    }

    #[test]
    fn random_is_deterministic_and_seed_sensitive() {
        assert_eq!(U1024::random(5), U1024::random(5));
        assert_ne!(U1024::random(5), U1024::random(6));
    }

    sim_rt::prop_check! {
        cases = 64;

        fn mod_mul_matches_u128_random(a in 0u64..1_000_000, b in 0u64..1_000_000, m in 2u64..1_000_000) {
            let got = small(a % m).mod_mul(&small(b % m), &small(m));
            let expect = ((a % m) as u128 * (b % m) as u128 % m as u128) as u64;
            assert_eq!(got, small(expect));
        }

        fn mod_exp_matches_naive(a in 1u64..1000, e in 0u64..64, m in 2u64..10_000) {
            let mut expect = 1u128;
            for _ in 0..e {
                expect = expect * (a % m) as u128 % m as u128;
            }
            let got = small(a % m).mod_exp(&small(e), &small(m));
            assert_eq!(got, small(expect as u64));
        }

        fn hamming_weight_matches_set_bits(
            bits in sim_rt::check::btree_set_of(0usize..1024, 0..64)
        ) {
            let mut v = U1024::ZERO;
            for &b in &bits {
                v.set_bit(b, true);
            }
            assert_eq!(v.hamming_weight() as usize, bits.len());
        }

        fn ordering_consistent_with_subtraction(sa in 0u64..1000, sb in 0u64..1000) {
            let a = U1024::random(sa);
            let b = U1024::random(sb);
            let (_, borrow) = a.overflowing_sub(&b);
            assert_eq!(borrow, a < b);
        }
    }
}
