//! Victim workload classification (cf. Gobulukoglu et al., DAC'21,
//! "Classifying Computations on Multi-Tenant FPGAs" — but circuit-free).
//!
//! Before mounting a targeted attack, a reconnaissance step asks: *what
//! kind of circuit is the fabric running right now?* This module
//! classifies the victim's workload class — idle fabric, power-virus
//! stress, RSA encryption, DPU inference, covert transmission — from a
//! short unprivileged hwmon capture. The prior art needed a co-resident
//! sensor circuit for this; AmpereBleed does it with a file read.

use fpga_fabric::covert::CovertConfig;
use fpga_fabric::rsa::{RsaConfig, RsaKey};
use fpga_fabric::virus::VirusConfig;
use rforest::{Dataset, ForestConfig, RandomForest};
use trace_stats::features::feature_vector;
use zynq_soc::{PowerDomain, SimTime};

use dpu::DpuConfig;

use crate::{AttackError, Channel, CurrentSampler, Platform, Result, Trace};

/// The workload classes the reconnaissance step distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WorkloadClass {
    /// Nothing deployed beyond the platform's base bitstream.
    Idle,
    /// Power-virus stress activity.
    PowerVirus,
    /// RSA-1024 encryption loop.
    Rsa,
    /// DPU DNN inference loop.
    DpuInference,
    /// Covert-channel transmission.
    CovertTx,
}

impl WorkloadClass {
    /// All classes.
    pub const ALL: [WorkloadClass; 5] = [
        WorkloadClass::Idle,
        WorkloadClass::PowerVirus,
        WorkloadClass::Rsa,
        WorkloadClass::DpuInference,
        WorkloadClass::CovertTx,
    ];
}

impl std::fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WorkloadClass::Idle => "idle",
            WorkloadClass::PowerVirus => "power-virus",
            WorkloadClass::Rsa => "rsa-1024",
            WorkloadClass::DpuInference => "dpu-inference",
            WorkloadClass::CovertTx => "covert-tx",
        };
        f.write_str(s)
    }
}

/// Parameters of the reconnaissance classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Labelled traces per class in the profiling phase.
    pub traces_per_class: usize,
    /// Capture length per trace, seconds.
    pub capture_seconds: f64,
    /// Feature resample length.
    pub resample_len: usize,
    /// Classifier configuration.
    pub forest: ForestConfig,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            traces_per_class: 10,
            capture_seconds: 2.0,
            resample_len: 48,
            forest: ForestConfig {
                n_trees: 50,
                ..ForestConfig::default()
            },
            seed: 41,
        }
    }
}

/// A trained workload classifier.
#[derive(Debug, Clone)]
pub struct WorkloadClassifier {
    forest: RandomForest,
    resample_len: usize,
}

/// Result of profiling + hold-out evaluation.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// The trained classifier.
    pub classifier: WorkloadClassifier,
    /// Hold-out accuracy over all classes.
    pub holdout_accuracy: f64,
}

/// Builds a platform running the given workload class.
fn platform_running(class: WorkloadClass, seed: u64) -> Result<Platform> {
    let mut platform = Platform::zcu102(seed);
    match class {
        WorkloadClass::Idle => {}
        WorkloadClass::PowerVirus => {
            let virus = platform.deploy_virus(VirusConfig::default())?;
            // A plausible stress level, varied per capture.
            let level = 40 + (zynq_soc::hash01(seed, 11, 0) * 80.0) as u32;
            virus
                .activate_groups(level)
                .map_err(|e| AttackError::InvalidParameter(e.to_string()))?;
        }
        WorkloadClass::Rsa => {
            let hw = 1 + (zynq_soc::hash01(seed, 12, 0) * 1023.0) as u32;
            let key = RsaKey::with_hamming_weight(hw, seed)
                .map_err(|e| AttackError::InvalidParameter(e.to_string()))?;
            platform.deploy_rsa(RsaConfig::default(), key)?;
        }
        WorkloadClass::DpuInference => {
            let dpu = platform.deploy_dpu(DpuConfig::default())?;
            let models = dnn_models::zoo();
            let pick = (zynq_soc::hash01(seed, 13, 0) * models.len() as f64) as usize;
            dpu.load_model(&models[pick.min(models.len() - 1)]);
        }
        WorkloadClass::CovertTx => {
            let byte = (zynq_soc::hash01(seed, 14, 0) * 255.0) as u8;
            platform.deploy_covert_transmitter(CovertConfig::default(), &[byte, !byte])?;
        }
    }
    Ok(platform)
}

fn capture(platform: &Platform, config: &WorkloadConfig, start: SimTime) -> Result<Trace> {
    let rate_hz = 1_000.0 / 35.0;
    let count = (config.capture_seconds * rate_hz).ceil() as usize;
    CurrentSampler::unprivileged(platform).capture(
        PowerDomain::FpgaLogic,
        Channel::Current,
        start,
        rate_hz,
        count,
    )
}

/// Profiles every workload class, trains the classifier, and evaluates on
/// held-out captures.
///
/// # Errors
///
/// Propagates deployment, capture, feature and dataset errors.
pub fn run(config: &WorkloadConfig) -> Result<WorkloadReport> {
    let mut features = Vec::new();
    let mut labels = Vec::new();
    let mut holdout: Vec<(Vec<f64>, usize)> = Vec::new();
    for (label, &class) in WorkloadClass::ALL.iter().enumerate() {
        for rep in 0..config.traces_per_class + 1 {
            let seed = config
                .seed
                .wrapping_mul(97)
                .wrapping_add((label * 1_000 + rep) as u64);
            let platform = platform_running(class, seed)?;
            let start = SimTime::from_ms(40 + (zynq_soc::hash01(seed, 15, 0) * 500.0) as u64);
            let trace = capture(&platform, config, start)?;
            let f = feature_vector(&trace.samples, config.resample_len)?;
            if rep == config.traces_per_class {
                holdout.push((f, label));
            } else {
                features.push(f);
                labels.push(label);
            }
        }
    }
    let dataset =
        Dataset::new(features, labels).map_err(|e| AttackError::InvalidParameter(e.to_string()))?;
    let forest = RandomForest::fit(&dataset, &config.forest);
    let classifier = WorkloadClassifier {
        forest,
        resample_len: config.resample_len,
    };
    let correct = holdout
        .iter()
        .filter(|(f, label)| classifier.forest.predict(f) == *label)
        .count();
    Ok(WorkloadReport {
        holdout_accuracy: correct as f64 / holdout.len() as f64,
        classifier,
    })
}

impl WorkloadClassifier {
    /// Classifies an online capture.
    ///
    /// # Errors
    ///
    /// Propagates feature extraction errors.
    pub fn identify(&self, trace: &Trace) -> Result<WorkloadClass> {
        let f = feature_vector(&trace.samples, self.resample_len)?;
        let label = self.forest.predict(&f).min(WorkloadClass::ALL.len() - 1);
        Ok(WorkloadClass::ALL[label])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_classes_are_distinguishable() {
        let config = WorkloadConfig {
            traces_per_class: 6,
            capture_seconds: 1.5,
            ..WorkloadConfig::default()
        };
        let report = run(&config).unwrap();
        assert!(
            report.holdout_accuracy >= 0.8,
            "reconnaissance accuracy {} (chance 0.2)",
            report.holdout_accuracy
        );
    }

    #[test]
    fn online_identification_of_rsa() {
        let config = WorkloadConfig {
            traces_per_class: 6,
            capture_seconds: 1.5,
            ..WorkloadConfig::default()
        };
        let report = run(&config).unwrap();
        let platform = platform_running(WorkloadClass::Rsa, 0x5A5A).unwrap();
        let trace = capture(&platform, &config, SimTime::from_ms(40)).unwrap();
        assert_eq!(
            report.classifier.identify(&trace).unwrap(),
            WorkloadClass::Rsa
        );
    }

    #[test]
    fn class_display() {
        assert_eq!(WorkloadClass::DpuInference.to_string(), "dpu-inference");
        assert_eq!(WorkloadClass::ALL.len(), 5);
    }
}
