//! The attack-vs-defense scenario matrix: the `defend` campaign verb.
//!
//! A defend sweep fixes one attack (RSA key recovery, DPU fingerprinting,
//! or the covert channel) and one defense stack (layers from
//! [`sim_defend`]), then measures the attack's success metric at each
//! configured defense strength — the undefended baseline first, then every
//! sweep point on a platform hardened with the stack built at that
//! strength. The result is an ROC-style success-vs-strength curve
//! ([`trace_stats::roc`]) answering the operator's question: *how strong
//! must this countermeasure be before this attack stops working?*
//!
//! Determinism: every sweep point builds fresh platforms and a fresh
//! defense stack from seeds derived only from the campaign seed, the layer
//! kind, the device and the conversion window, so a sweep is byte-identical
//! at any pool width and whether served or run serially. At strength zero
//! the stack installs nothing, making the zero point *exactly* the
//! undefended baseline.

use sim_defend::{stack_from, LayerKind};
use sim_rt::json;
use sim_rt::pool::Pool;
use sim_rt::rng::derive_seed;
use sim_rt::ser::Value;
use sim_store::{Checkpoint, Digest, Store};
use trace_stats::roc::{RocCurve, RocPoint};

use fpga_fabric::covert::CovertConfig;
use hwmon_sim::HwmonError;

use crate::fingerprint::{self, FingerprintConfig};
use crate::rsa_attack::{self, RsaAttackConfig};
use crate::{covert, AttackError, Platform, Result};

/// A platform-hardening hook the attack entry points accept: called once
/// per freshly built platform, after the victim deploys and before any
/// capture. The no-op hardener reproduces the undefended attack exactly.
pub type Hardener<'a> = &'a (dyn Fn(&mut Platform) -> Result<()> + Sync);

/// The no-op hardener.
pub const UNDEFENDED: Hardener<'static> = &|_| Ok(());

/// Stream tag for deriving the defense master seed from the campaign seed
/// (`derive_seed(seed, DEFENSE_STREAM)`), keeping defense randomness
/// disjoint from every attack stream.
pub const DEFENSE_STREAM: u64 = 0xDEF0;

/// Which attack a defend sweep measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum AttackKind {
    /// RSA Hamming-weight recovery; success = fraction of key groups the
    /// current channel distinguishes.
    Rsa,
    /// DPU model fingerprinting; success = best cross-validated top-1
    /// accuracy over the Table III grid.
    Fingerprint,
    /// Covert channel; success = binary-symmetric-channel capacity
    /// `1 - H2(BER)` of the round trip.
    Covert,
}

impl AttackKind {
    /// Every attack kind, in canonical order.
    pub const ALL: [AttackKind; 3] = [AttackKind::Rsa, AttackKind::Fingerprint, AttackKind::Covert];

    /// Stable configuration tag.
    pub fn tag(self) -> &'static str {
        match self {
            AttackKind::Rsa => "rsa",
            AttackKind::Fingerprint => "fingerprint",
            AttackKind::Covert => "covert",
        }
    }

    /// Parses a configuration tag.
    pub fn from_tag(tag: &str) -> Option<AttackKind> {
        AttackKind::ALL.into_iter().find(|k| k.tag() == tag)
    }
}

impl std::fmt::Display for AttackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// Parameters of one defend sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DefendConfig {
    /// Campaign master seed (drives attack *and* defense randomness, on
    /// disjoint derived streams).
    pub seed: u64,
    /// The attack under test.
    pub attack: AttackKind,
    /// Defense layers to stack, in application order.
    pub layers: Vec<LayerKind>,
    /// Strengths to sweep, strictly increasing, each in `[0, 1]`.
    pub strengths: Vec<f64>,
    /// RSA attack parameters (used when `attack` is [`AttackKind::Rsa`];
    /// its seed field is overridden by `seed`).
    pub rsa: RsaAttackConfig,
    /// Fingerprinting parameters (seed likewise overridden).
    pub fingerprint: FingerprintConfig,
    /// Zoo prefix size for fingerprinting.
    pub n_models: usize,
    /// Covert-channel parameters.
    pub covert: CovertConfig,
    /// Covert payload.
    pub payload: Vec<u8>,
}

impl DefendConfig {
    /// A reduced sweep against `attack` for fast tests and smoke gates:
    /// jitter + noise + throttle at strengths 0, ½, 1.
    pub fn quick(attack: AttackKind) -> Self {
        DefendConfig {
            seed: 11,
            attack,
            layers: vec![LayerKind::Jitter, LayerKind::Noise, LayerKind::Throttle],
            strengths: vec![0.0, 0.5, 1.0],
            rsa: RsaAttackConfig {
                hamming_weights: vec![1, 512, 1024],
                samples_per_key: 1_500,
                ..RsaAttackConfig::quick()
            },
            fingerprint: FingerprintConfig {
                traces_per_model: 4,
                capture_seconds: 1.0,
                folds: 2,
                ..FingerprintConfig::quick()
            },
            n_models: 3,
            covert: CovertConfig::default(),
            payload: b"ampere".to_vec(),
        }
    }

    /// Checks the sweep parameters (including the selected attack's own
    /// config) before any capture starts.
    ///
    /// # Errors
    ///
    /// [`AttackError::InvalidParameter`] for an empty layer list, an
    /// empty/unsorted/out-of-range strength list, or an invalid attack
    /// config.
    pub fn validate(&self) -> Result<()> {
        if self.layers.is_empty() {
            return Err(AttackError::InvalidParameter("no defense layers".into()));
        }
        if self.strengths.is_empty() {
            return Err(AttackError::InvalidParameter("no sweep strengths".into()));
        }
        for &s in &self.strengths {
            if !s.is_finite() || !(0.0..=1.0).contains(&s) {
                return Err(AttackError::InvalidParameter(format!(
                    "strength {s} outside [0, 1]"
                )));
            }
        }
        if self.strengths.windows(2).any(|w| w[1] <= w[0]) {
            return Err(AttackError::InvalidParameter(
                "strengths must be strictly increasing".into(),
            ));
        }
        match self.attack {
            AttackKind::Rsa => self.rsa.validate(),
            AttackKind::Fingerprint => self.fingerprint.validate(),
            AttackKind::Covert => {
                if self.payload.is_empty() {
                    return Err(AttackError::InvalidParameter(
                        "payload must be non-empty".into(),
                    ));
                }
                Ok(())
            }
        }
    }

    /// The stack's stable textual form at sweep granularity (layer tags
    /// joined by `+`), used in reports.
    pub fn stack_tags(&self) -> String {
        self.layers
            .iter()
            .map(|k| k.tag())
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Content digest of the whole sweep, addressing its checkpoint file:
    /// two sweeps share persisted points exactly when every
    /// result-affecting parameter matches.
    pub fn sweep_key(&self) -> Digest {
        let content = Value::Object(vec![
            ("attack".into(), Value::Str(self.attack.tag().into())),
            ("covert".into(), Value::Str(format!("{:?}", self.covert))),
            (
                "fingerprint".into(),
                Value::Str(format!("{:?}", self.fingerprint)),
            ),
            ("n_models".into(), Value::from(self.n_models as u64)),
            (
                "payload".into(),
                Value::Array(
                    self.payload
                        .iter()
                        .map(|&b| Value::from(b as u64))
                        .collect(),
                ),
            ),
            ("rsa".into(), Value::Str(format!("{:?}", self.rsa))),
            ("stack".into(), Value::Str(self.stack_tags())),
            (
                "strengths".into(),
                Value::Array(self.strengths.iter().map(|&s| Value::from(s)).collect()),
            ),
        ]);
        Store::key("defend-sweep", self.seed, &content)
    }
}

/// One sweep point: the attack's measured success under one defense
/// strength.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefendPoint {
    /// Uniform strength the stack was built at (0 for the baseline).
    pub strength: f64,
    /// Attack success metric in `[0, 1]`.
    pub success: f64,
    /// Whether the attack was blocked outright (unprivileged reads denied
    /// by an install-time layer) rather than statistically degraded.
    pub blocked: bool,
}

impl DefendPoint {
    /// Checkpoint codec: the point as a stable JSON value. `f64` fields
    /// survive bit-exactly — the serializer emits shortest-roundtrip
    /// floats, so a resumed sweep is byte-identical to a fresh one.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("blocked".into(), Value::Bool(self.blocked)),
            ("strength".into(), Value::from(self.strength)),
            ("success".into(), Value::from(self.success)),
        ])
    }

    /// Decodes a checkpointed point; `None` for any schema mismatch (the
    /// caller recomputes — a damaged record only costs work, never
    /// correctness).
    pub fn from_json(line: &str) -> Option<DefendPoint> {
        let v = json::parse(line).ok()?;
        Some(DefendPoint {
            strength: v.get("strength")?.as_f64()?,
            success: v.get("success")?.as_f64()?,
            blocked: v.get("blocked")?.as_bool()?,
        })
    }
}

/// The result of a defend sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DefendReport {
    /// The attack under test.
    pub attack: AttackKind,
    /// Layer tags of the stack, in application order.
    pub stack: String,
    /// The undefended reference point.
    pub baseline: DefendPoint,
    /// One point per configured strength, in sweep order.
    pub points: Vec<DefendPoint>,
    /// The validated success-vs-strength curve over `points`.
    pub curve: RocCurve,
}

impl DefendReport {
    /// Renders the deterministic report table (see
    /// [`RocCurve::render_table`]) — the artifact the byte-identity
    /// acceptance tests pin.
    pub fn render(&self) -> String {
        self.curve
            .render_table(self.attack.tag(), &self.stack, self.baseline.success)
    }
}

/// Shannon capacity of a binary symmetric channel with crossover `ber`,
/// the covert channel's success metric: `1` for error-free decoding,
/// `0` at BER one-half.
pub fn bsc_capacity(ber: f64) -> f64 {
    let p = ber.clamp(0.0, 1.0);
    let p = p.min(1.0 - p); // an inverting channel still carries bits
    if p <= 0.0 {
        return 1.0;
    }
    1.0 + p * p.log2() + (1.0 - p) * (1.0 - p).log2()
}

/// Runs one attack, hardened or not, and reduces it to a [`DefendPoint`].
/// `strength: None` is the undefended baseline (structurally identical to
/// calling the plain attack entry points).
fn attack_point(config: &DefendConfig, strength: Option<f64>) -> Result<DefendPoint> {
    let started_ns = obs::clock::monotonic_ns();
    let defense_seed = derive_seed(config.seed, DEFENSE_STREAM);
    let harden = move |platform: &mut Platform| -> Result<()> {
        if let Some(s) = strength {
            // Fresh stack per platform: stateful layers (throttle) must
            // not leak history across the sweep's independent platforms.
            let stack = stack_from(&config.layers, s, defense_seed);
            if !stack.is_noop() {
                stack
                    .install(platform.hwmon_mut())
                    .map_err(AttackError::from)?;
            }
        }
        Ok(())
    };
    let outcome: Result<f64> = match config.attack {
        AttackKind::Rsa => {
            let mut cfg = config.rsa.clone();
            cfg.seed = config.seed;
            rsa_attack::run_hardened(&cfg, &harden).map(|report| {
                report.current_separability.distinguishable as f64
                    / report.observations.len() as f64
            })
        }
        AttackKind::Fingerprint => {
            let mut cfg = config.fingerprint.clone();
            cfg.seed = config.seed;
            // Serial inner pool: the sweep point is the parallel axis.
            fingerprint::run_hardened(&cfg, config.n_models, &Pool::serial(), &harden).map(|grid| {
                grid.rows
                    .iter()
                    .flat_map(|(_, cells)| cells.iter().map(|c| c.top1))
                    .fold(0.0f64, f64::max)
            })
        }
        AttackKind::Covert => {
            covert::round_trip_hardened(&config.covert, &config.payload, config.seed, &harden)
                .map(|(_rx, ber)| bsc_capacity(ber))
        }
    };
    let point = match outcome {
        Ok(success) => DefendPoint {
            strength: strength.unwrap_or(0.0),
            success,
            blocked: false,
        },
        // An install-time layer (root-only) denies the unprivileged
        // sampler: the attack is blocked outright, success zero.
        Err(AttackError::Hwmon(HwmonError::PermissionDenied(_))) => {
            obs::counter!("defend.blocked").inc();
            DefendPoint {
                strength: strength.unwrap_or(0.0),
                success: 0.0,
                blocked: true,
            }
        }
        Err(e) => return Err(e),
    };
    obs::counter!("defend.points").inc();
    obs::histogram!("defend.point.ns")
        .observe(obs::clock::monotonic_ns().saturating_sub(started_ns));
    Ok(point)
}

/// Runs a defend sweep on the process-wide pool.
///
/// # Errors
///
/// Propagates configuration and attack failures (a permission-denied
/// capture is a *blocked* point, not an error).
pub fn run(config: &DefendConfig) -> Result<DefendReport> {
    run_with(config, Pool::global())
}

/// [`run`] with the sweep points spread across `pool`. Each point is a
/// pure function of `(seed, attack config, layers, strength)`, so the
/// report is byte-identical at any pool width.
///
/// # Errors
///
/// Propagates configuration and attack failures.
pub fn run_with(config: &DefendConfig, pool: &Pool) -> Result<DefendReport> {
    run_checkpointed(config, pool, &Checkpoint::in_memory())
}

/// [`run_with`] persisting every finished point to `ckpt` as it lands:
/// point 0 is the undefended baseline, point `i + 1` is `strengths[i]`.
/// A sweep interrupted mid-flight resumes by rerunning with the same
/// checkpoint — already-persisted points are decoded instead of
/// recomputed, and the resumed report is byte-identical to an
/// uninterrupted run (the codec round-trips `f64` bit-exactly).
///
/// Pass [`Checkpoint::in_memory`] to opt out of persistence (that is all
/// [`run_with`] does).
///
/// # Errors
///
/// Propagates configuration and attack failures. A checkpoint record that
/// fails to decode is recomputed, not an error.
pub fn run_checkpointed(
    config: &DefendConfig,
    pool: &Pool,
    ckpt: &Checkpoint,
) -> Result<DefendReport> {
    config.validate()?;
    obs::counter!("defend.sweeps").inc();
    obs::info!(
        "core.defend",
        "defend sweep started";
        "attack" => config.attack.tag(),
        "points" => config.strengths.len() as u64,
        "resumable" => ckpt.len() as u64
    );
    let baseline = checkpointed_point(ckpt, 0, || attack_point(config, None))?;
    let indices: Vec<usize> = (0..config.strengths.len()).collect();
    let points: Vec<DefendPoint> = pool
        .par_map(&indices, |_, &i| {
            checkpointed_point(ckpt, i as u64 + 1, || {
                attack_point(config, config.strengths.get(i).copied())
            })
        })
        .into_iter()
        .collect::<Result<_>>()?;
    let curve = RocCurve::new(
        points
            .iter()
            .map(|p| RocPoint {
                strength: p.strength,
                success: p.success,
            })
            .collect(),
    )?;
    obs::info!("core.defend", "defend sweep finished"; "auc" => format!("{:.4}", curve.auc()));
    Ok(DefendReport {
        attack: config.attack,
        stack: config.stack_tags(),
        baseline,
        points,
        curve,
    })
}

/// Serves point `index` from `ckpt` when a decodable record exists,
/// otherwise computes it via `compute` and persists the result.
fn checkpointed_point(
    ckpt: &Checkpoint,
    index: u64,
    compute: impl FnOnce() -> Result<DefendPoint>,
) -> Result<DefendPoint> {
    if let Some(point) = ckpt.get(index).as_deref().and_then(DefendPoint::from_json) {
        return Ok(point);
    }
    let point = compute()?;
    ckpt.put(index, &point.to_value().to_json());
    Ok(point)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsc_capacity_shape() {
        assert_eq!(bsc_capacity(0.0), 1.0);
        assert!(bsc_capacity(0.5).abs() < 1e-12);
        assert_eq!(bsc_capacity(1.0), 1.0); // inverted but perfect
        let mid = bsc_capacity(0.11);
        assert!((0.0..1.0).contains(&mid));
        assert!(bsc_capacity(0.05) > bsc_capacity(0.2));
    }

    #[test]
    fn validation_rejects_bad_sweeps() {
        let mut c = DefendConfig::quick(AttackKind::Covert);
        c.layers.clear();
        assert!(c.validate().is_err());
        let mut c = DefendConfig::quick(AttackKind::Covert);
        c.strengths = vec![0.5, 0.5];
        assert!(c.validate().is_err());
        let mut c = DefendConfig::quick(AttackKind::Covert);
        c.strengths = vec![-0.1];
        assert!(c.validate().is_err());
        let mut c = DefendConfig::quick(AttackKind::Covert);
        c.payload.clear();
        assert!(c.validate().is_err());
        assert!(DefendConfig::quick(AttackKind::Covert).validate().is_ok());
    }

    #[test]
    fn covert_sweep_degrades_with_strength() {
        let config = DefendConfig::quick(AttackKind::Covert);
        let report = run_with(&config, &Pool::serial()).unwrap();
        assert_eq!(report.points.len(), 3);
        // Strength zero equals the undefended baseline exactly.
        assert_eq!(report.points[0].success, report.baseline.success);
        assert_eq!(report.baseline.success, 1.0, "quick covert decodes clean");
        // Full strength must hurt: jitter+noise+throttle at 1.0 break the
        // on-off keying decode.
        assert!(
            report.points[2].success < report.baseline.success,
            "full-strength stack did not degrade the channel: {:?}",
            report.points
        );
        assert!(report.curve.auc() < 1.0);
        let table = report.render();
        assert!(table.contains("defend sweep        : covert vs jitter+noise+throttle"));
    }

    #[test]
    fn root_only_blocks_every_attack_kind() {
        for attack in AttackKind::ALL {
            let mut config = DefendConfig::quick(attack);
            config.layers = vec![LayerKind::RootOnly];
            config.strengths = vec![1.0];
            let report = run_with(&config, &Pool::serial()).unwrap();
            assert!(report.points[0].blocked, "{attack} not blocked");
            assert_eq!(report.points[0].success, 0.0);
            assert!(!report.baseline.blocked);
            assert!(report.baseline.success > 0.0);
        }
    }

    #[test]
    fn attack_kind_tags_round_trip() {
        for kind in AttackKind::ALL {
            assert_eq!(AttackKind::from_tag(kind.tag()), Some(kind));
            assert_eq!(kind.to_string(), kind.tag());
        }
        assert_eq!(AttackKind::from_tag("bogus"), None);
    }
}
