//! TEE workload inference (the paper's future-work question, answered).
//!
//! Section V asks "whether these INA226 sensors could be exploited to
//! attack trusted execution environments (TEEs) implemented on FPGA".
//! This module mounts that attack on the simulated platform: an SGX-FPGA
//! style enclave ([`fpga_fabric::enclave`]) executes confidential tasks
//! behind logical isolation, and an unprivileged observer classifies which
//! task runs from nothing but hwmon current traces.

use fpga_fabric::enclave::EnclaveTask;
use rforest::{Dataset, ForestConfig, RandomForest};
use trace_stats::features::feature_vector;
use zynq_soc::{PowerDomain, SimTime};

use crate::{AttackError, Channel, CurrentSampler, Platform, Result, Trace};

/// Parameters of the TEE workload-inference attack.
#[derive(Debug, Clone, PartialEq)]
pub struct TeeAttackConfig {
    /// Labelled traces collected per task in the profiling phase.
    pub traces_per_task: usize,
    /// Capture length per trace, seconds.
    pub capture_seconds: f64,
    /// Feature resample length.
    pub resample_len: usize,
    /// Classifier configuration.
    pub forest: ForestConfig,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for TeeAttackConfig {
    fn default() -> Self {
        TeeAttackConfig {
            traces_per_task: 12,
            capture_seconds: 2.0,
            resample_len: 48,
            forest: ForestConfig {
                n_trees: 50,
                ..ForestConfig::default()
            },
            seed: 23,
        }
    }
}

/// A trained enclave-task classifier.
#[derive(Debug, Clone)]
pub struct TeeClassifier {
    forest: RandomForest,
    resample_len: usize,
}

/// Result of profiling + self-evaluation.
#[derive(Debug, Clone)]
pub struct TeeAttackReport {
    /// The trained classifier (usable online afterwards).
    pub classifier: TeeClassifier,
    /// Hold-out accuracy over all task types.
    pub holdout_accuracy: f64,
}

fn capture_task_trace(
    platform: &Platform,
    config: &TeeAttackConfig,
    start: SimTime,
) -> Result<Trace> {
    let rate_hz = 1_000.0 / 35.0;
    let count = (config.capture_seconds * rate_hz).ceil() as usize;
    CurrentSampler::unprivileged(platform).capture(
        PowerDomain::FpgaLogic,
        Channel::Current,
        start,
        rate_hz,
        count,
    )
}

/// Profiles every [`EnclaveTask`] on fresh platforms, trains a classifier,
/// and evaluates it on held-out captures.
///
/// # Errors
///
/// Propagates deployment, capture, feature and dataset errors.
pub fn run(config: &TeeAttackConfig) -> Result<TeeAttackReport> {
    let mut features = Vec::new();
    let mut labels = Vec::new();
    let mut holdout: Vec<(Vec<f64>, usize)> = Vec::new();

    for (label, &task) in EnclaveTask::ALL.iter().enumerate() {
        // One extra capture per task is held out for evaluation.
        for rep in 0..config.traces_per_task + 1 {
            let seed = config
                .seed
                .wrapping_mul(31)
                .wrapping_add((label * 100 + rep) as u64);
            let mut platform = Platform::zcu102(seed);
            let enclave = platform.deploy_enclave()?;
            enclave.run(task);
            let start = SimTime::from_ms(40 + (zynq_soc::hash01(seed, 8, 0) * 300.0) as u64);
            let trace = capture_task_trace(&platform, config, start)?;
            let f = feature_vector(&trace.samples, config.resample_len)?;
            if rep == config.traces_per_task {
                holdout.push((f, label));
            } else {
                features.push(f);
                labels.push(label);
            }
        }
    }

    let dataset =
        Dataset::new(features, labels).map_err(|e| AttackError::InvalidParameter(e.to_string()))?;
    let forest = RandomForest::fit(&dataset, &config.forest);
    let classifier = TeeClassifier {
        forest,
        resample_len: config.resample_len,
    };
    let correct = holdout
        .iter()
        .filter(|(f, label)| classifier.forest.predict(f) == *label)
        .count();
    let holdout_accuracy = correct as f64 / holdout.len() as f64;
    Ok(TeeAttackReport {
        classifier,
        holdout_accuracy,
    })
}

impl TeeClassifier {
    /// Classifies an online capture of the enclave's FPGA current.
    ///
    /// # Errors
    ///
    /// Propagates feature extraction errors (e.g. an empty trace).
    pub fn identify(&self, trace: &Trace) -> Result<EnclaveTask> {
        let f = feature_vector(&trace.samples, self.resample_len)?;
        Ok(EnclaveTask::ALL[self.forest.predict(&f).min(EnclaveTask::ALL.len() - 1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enclave_tasks_are_classifiable() {
        let config = TeeAttackConfig {
            traces_per_task: 6,
            capture_seconds: 1.0,
            ..TeeAttackConfig::default()
        };
        let report = run(&config).unwrap();
        assert!(
            report.holdout_accuracy >= 0.8,
            "TEE inference accuracy {} (chance 0.2)",
            report.holdout_accuracy
        );
    }

    #[test]
    fn online_identification_of_specific_task() {
        let config = TeeAttackConfig {
            traces_per_task: 6,
            capture_seconds: 1.0,
            ..TeeAttackConfig::default()
        };
        let report = run(&config).unwrap();

        let mut platform = Platform::zcu102(0xEE);
        let enclave = platform.deploy_enclave().unwrap();
        enclave.run(EnclaveTask::MatMul);
        let trace = capture_task_trace(&platform, &config, SimTime::from_ms(40)).unwrap();
        assert_eq!(
            report.classifier.identify(&trace).unwrap(),
            EnclaveTask::MatMul
        );
    }

    #[test]
    fn mitigation_blocks_tee_attack() {
        let mut platform = Platform::zcu102(0xEF);
        let enclave = platform.deploy_enclave().unwrap();
        enclave.run(EnclaveTask::Signature);
        crate::mitigation::restrict_all_sensors(&mut platform).unwrap();
        let config = TeeAttackConfig::default();
        assert!(capture_task_trace(&platform, &config, SimTime::from_ms(40)).is_err());
    }
}
