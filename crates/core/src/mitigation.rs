//! The Section V countermeasure: restrict INA226 hwmon nodes to root.
//!
//! AmpereBleed needs nothing but unprivileged file reads, so the only
//! software mitigation short of removing the sensors is taking the
//! measurement attributes away from user processes. This module applies
//! that policy to a platform and verifies its effect: every unprivileged
//! capture fails with `PermissionDenied` while privileged (benign
//! monitoring) access keeps working. The paper notes the cost — benign
//! tools relying on these nodes for performance monitoring, fault
//! detection and system management break too, and legacy devices never
//! receive the driver update.
//!
//! Since the defense-layer subsystem landed, this policy is also
//! available as the zero-cost baseline layer
//! [`sim_defend::RootOnly`] in any [`sim_defend::DefenseStack`]; the
//! functions here are thin wrappers kept for the original Section V API.

use sim_defend::{DefenseLayer, RootOnly};

use crate::{AttackError, Platform, Result};

/// Applies the root-only read policy to every sensitive sensor on the
/// platform (the [`RootOnly`] defense layer at full strength).
///
/// # Errors
///
/// Propagates [`crate::AttackError::Hwmon`] if a sensor is missing (which
/// would indicate a mis-assembled platform).
pub fn restrict_all_sensors(platform: &mut Platform) -> Result<()> {
    RootOnly::enabled()
        .install(platform.hwmon_mut())
        .map_err(AttackError::from)
}

/// Lifts the policy again (e.g. to compare before/after in experiments).
pub fn unrestrict_all_sensors(platform: &mut Platform) {
    RootOnly::lift(platform.hwmon_mut());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttackError, Channel, CurrentSampler};
    use fpga_fabric::virus::VirusConfig;
    use hwmon_sim::HwmonError;
    use zynq_soc::{PowerDomain, SimTime};

    #[test]
    fn mitigation_blocks_unprivileged_sampling_everywhere() {
        let mut p = Platform::zcu102(61);
        p.deploy_virus(VirusConfig::default()).unwrap();
        restrict_all_sensors(&mut p).unwrap();
        let sampler = CurrentSampler::unprivileged(&p);
        for domain in PowerDomain::ALL {
            for channel in Channel::ALL {
                let err = sampler
                    .capture(domain, channel, SimTime::from_ms(40), 1_000.0, 10)
                    .unwrap_err();
                assert!(
                    matches!(err, AttackError::Hwmon(HwmonError::PermissionDenied(_))),
                    "{domain}/{channel} must be denied, got {err}"
                );
            }
        }
    }

    #[test]
    fn privileged_monitoring_still_works() {
        let mut p = Platform::zcu102(62);
        p.deploy_virus(VirusConfig::default()).unwrap();
        restrict_all_sensors(&mut p).unwrap();
        let root = CurrentSampler::privileged(&p);
        let trace = root
            .capture(
                PowerDomain::FpgaLogic,
                Channel::Current,
                SimTime::from_ms(40),
                1_000.0,
                10,
            )
            .unwrap();
        assert_eq!(trace.len(), 10);
    }

    #[test]
    fn policy_is_reversible() {
        let mut p = Platform::zcu102(63);
        p.deploy_virus(VirusConfig::default()).unwrap();
        restrict_all_sensors(&mut p).unwrap();
        unrestrict_all_sensors(&mut p);
        let sampler = CurrentSampler::unprivileged(&p);
        assert!(sampler
            .capture(
                PowerDomain::FpgaLogic,
                Channel::Current,
                SimTime::from_ms(40),
                1_000.0,
                5
            )
            .is_ok());
    }
}
