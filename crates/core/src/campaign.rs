//! Full attack campaign orchestration.
//!
//! Runs the complete AmpereBleed evaluation — characterization, DPU
//! fingerprinting, RSA Hamming-weight recovery, the covert channel, the
//! TEE and workload-reconnaissance extensions — and then verifies the
//! Section V mitigation blocks all of it. One call, one composite report:
//! the shape every table and figure of the paper reduces to.

use dnn_models::ModelArch;
use fpga_fabric::covert::CovertConfig;
use fpga_fabric::ring_oscillator::RoConfig;
use fpga_fabric::virus::VirusConfig;
use zynq_soc::SimTime;

use crate::characterize::{self, CharacterizationReport, CharacterizeConfig};
use crate::defend::{self, DefendConfig, DefendReport};
use crate::fingerprint::{collect_corpus, evaluate_grid, AccuracyGrid, FingerprintConfig};
use crate::mitigation::restrict_all_sensors;
use crate::rsa_attack::{self, RsaAttackConfig, RsaAttackReport};
use crate::tee::{self, TeeAttackConfig};
use crate::workload::{self, WorkloadConfig};
use crate::{covert, AttackError, Platform, Result};

/// Campaign-wide configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Master seed.
    pub seed: u64,
    /// Characterization sweep parameters.
    pub characterize: CharacterizeConfig,
    /// Fingerprinting parameters (applied to the Figure 3 model set).
    pub fingerprint: FingerprintConfig,
    /// RSA attack parameters.
    pub rsa: RsaAttackConfig,
    /// TEE attack parameters.
    pub tee: TeeAttackConfig,
    /// Workload-reconnaissance parameters.
    pub workload: WorkloadConfig,
    /// Optional defend sweep appended after the mitigation stage (`None`
    /// keeps the classic six-stage campaign). The sweep's own seed is
    /// overridden by the campaign seed.
    pub defend: Option<DefendConfig>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 2_025,
            characterize: CharacterizeConfig::quick(),
            fingerprint: FingerprintConfig::quick(),
            rsa: RsaAttackConfig::quick(),
            tee: TeeAttackConfig::default(),
            workload: WorkloadConfig::default(),
            defend: None,
        }
    }
}

impl CampaignConfig {
    /// A minimal configuration for tests (seconds, not minutes).
    pub fn minimal() -> Self {
        CampaignConfig {
            characterize: CharacterizeConfig {
                levels: vec![0, 80, 160],
                samples_per_level: 120,
                ..CharacterizeConfig::quick()
            },
            fingerprint: FingerprintConfig {
                traces_per_model: 4,
                capture_seconds: 1.0,
                folds: 2,
                ..FingerprintConfig::quick()
            },
            rsa: RsaAttackConfig {
                hamming_weights: vec![1, 512, 1024],
                samples_per_key: 1_500,
                ..RsaAttackConfig::quick()
            },
            tee: TeeAttackConfig {
                traces_per_task: 4,
                capture_seconds: 1.0,
                ..TeeAttackConfig::default()
            },
            workload: WorkloadConfig {
                traces_per_class: 4,
                capture_seconds: 1.0,
                ..WorkloadConfig::default()
            },
            ..CampaignConfig::default()
        }
    }

    /// Checks every stage's parameters before the campaign starts, so a
    /// bad override fails in milliseconds instead of mid-run.
    ///
    /// # Errors
    ///
    /// The first [`crate::AttackError::InvalidParameter`] from any
    /// stage config.
    pub fn validate(&self) -> Result<()> {
        self.characterize.validate()?;
        self.fingerprint.validate()?;
        self.rsa.validate()?;
        if let Some(defend) = &self.defend {
            defend.validate()?;
        }
        Ok(())
    }
}

/// Wall-clock timing of one campaign stage.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// Stage name (`characterization`, `fingerprinting`, ...).
    pub name: &'static str,
    /// Elapsed wall-clock time.
    pub elapsed: std::time::Duration,
}

/// The composite result of a full campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Figure 2 sweep (with RO baseline).
    pub characterization: CharacterizationReport,
    /// Table III grid over the Figure 3 model set.
    pub fingerprint_grid: AccuracyGrid,
    /// Figure 4 report.
    pub rsa: RsaAttackReport,
    /// Covert-channel bit error rate on a reference payload.
    pub covert_ber: f64,
    /// TEE workload-inference hold-out accuracy.
    pub tee_accuracy: f64,
    /// Workload-reconnaissance hold-out accuracy.
    pub workload_accuracy: f64,
    /// Whether the Section V mitigation blocked an attack re-run.
    pub mitigation_effective: bool,
    /// The optional defend sweep's report (`None` unless configured).
    pub defend: Option<DefendReport>,
    /// Wall-clock elapsed per stage, in execution order.
    pub phase_timings: Vec<PhaseTiming>,
    /// Process-global metrics frozen at campaign end: sensor-read
    /// counters, conversion telemetry, per-phase latency histograms.
    pub metrics: obs::MetricsSnapshot,
}

impl CampaignReport {
    /// Renders a terse multi-line verdict for terminal display.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "characterization : r_I={:+.4} r_RO={:+.4} ratio={:.0}x\n",
            self.characterization.pearson_current,
            self.characterization.pearson_ro.unwrap_or(f64::NAN),
            self.characterization
                .variation_ratio_vs_ro
                .unwrap_or(f64::NAN),
        ));
        let best = self
            .fingerprint_grid
            .rows
            .iter()
            .flat_map(|(_, cells)| cells.iter().map(|c| c.top1))
            .fold(0.0f64, f64::max);
        out.push_str(&format!(
            "fingerprinting   : best top-1 {:.3} (chance {:.3})\n",
            best,
            self.fingerprint_grid.chance()
        ));
        out.push_str(&format!(
            "rsa              : current {}/{} groups, power {}/{}\n",
            self.rsa.current_separability.distinguishable,
            self.rsa.observations.len(),
            self.rsa.power_separability.distinguishable,
            self.rsa.observations.len(),
        ));
        out.push_str(&format!("covert channel   : BER {:.4}\n", self.covert_ber));
        out.push_str(&format!(
            "tee inference    : {:.0}%\n",
            self.tee_accuracy * 100.0
        ));
        out.push_str(&format!(
            "workload recon   : {:.0}%\n",
            self.workload_accuracy * 100.0
        ));
        out.push_str(&format!(
            "mitigation       : {}\n",
            if self.mitigation_effective {
                "blocks every attack"
            } else {
                "FAILED to block"
            }
        ));
        if let Some(defend) = &self.defend {
            out.push_str(&format!(
                "defend sweep     : {} vs {} auc {:.3}\n",
                defend.attack,
                defend.stack,
                defend.curve.auc()
            ));
        }
        let total: f64 = self
            .phase_timings
            .iter()
            .map(|p| p.elapsed.as_secs_f64())
            .sum();
        for phase in &self.phase_timings {
            out.push_str(&format!(
                "  {:<16}: {:>8.3} s\n",
                phase.name,
                phase.elapsed.as_secs_f64()
            ));
        }
        out.push_str(&format!("  {:<16}: {total:>8.3} s\n", "total"));
        out
    }

    /// Renders the embedded metrics snapshot as a human-readable profile
    /// table (the `--profile` view of `examples/full_campaign.rs`).
    pub fn profile_table(&self) -> String {
        let mut out = String::new();
        out.push_str("phase timings:\n");
        for phase in &self.phase_timings {
            out.push_str(&format!(
                "  {:<44} {:>11.3} s\n",
                phase.name,
                phase.elapsed.as_secs_f64()
            ));
        }
        out.push_str(&self.metrics.render_table());
        out
    }
}

/// The Figure 3 model set used for the campaign's fingerprinting stage.
fn figure3_models(models: &[ModelArch]) -> Result<Vec<&ModelArch>> {
    [
        "mobilenet-v1",
        "squeezenet",
        "efficientnet-lite0",
        "inception-v3",
        "resnet-50",
        "vgg-19",
    ]
    .iter()
    .map(|name| {
        models
            .iter()
            .find(|m| &m.name == name)
            .ok_or_else(|| AttackError::InvalidParameter(format!("{name} missing from zoo")))
    })
    .collect()
}

/// Runs the full campaign.
///
/// # Errors
///
/// Propagates the first failure from any stage.
pub fn run(config: &CampaignConfig) -> Result<CampaignReport> {
    config.validate()?;
    obs::init();
    obs::info!("core.campaign", "campaign started"; "seed" => config.seed);
    let mut phase_timings = Vec::with_capacity(6);

    // Stage 1: characterization with the RO baseline co-deployed.
    let phase = TimedPhase::enter("characterization");
    let mut platform = Platform::zcu102(config.seed);
    platform.deploy_virus(VirusConfig::default())?;
    platform.deploy_ro_bank(RoConfig::default())?;
    let characterization = characterize::run(&platform, &config.characterize)?;
    phase.close(&mut phase_timings);

    // Stage 2: fingerprinting over the Figure 3 set.
    let phase = TimedPhase::enter("fingerprinting");
    let models = dnn_models::zoo();
    let victims = figure3_models(&models)?;
    let corpus = collect_corpus(&victims, &config.fingerprint)?;
    let fingerprint_grid = evaluate_grid(
        &corpus,
        &config.fingerprint,
        &[config.fingerprint.capture_seconds],
    )?;
    phase.close(&mut phase_timings);

    // Stage 3: RSA Hamming-weight recovery.
    let phase = TimedPhase::enter("rsa");
    let rsa = rsa_attack::run(&config.rsa)?;
    phase.close(&mut phase_timings);

    // Stage 4: covert channel round trip.
    let phase = TimedPhase::enter("covert");
    let payload = b"ampere";
    let covert_config = CovertConfig::default();
    let mut covert_platform = Platform::zcu102(config.seed ^ 0xC0);
    covert_platform.deploy_covert_transmitter(covert_config, payload)?;
    let rx = covert::receive(
        &covert_platform,
        &covert_config,
        payload.len(),
        SimTime::from_ms(91),
    )?;
    let covert_ber = covert::bit_error_rate(payload, &rx.payload);
    phase.close(&mut phase_timings);

    // Stage 5: TEE and workload reconnaissance.
    let phase = TimedPhase::enter("tee+workload");
    let tee_accuracy = tee::run(&config.tee)?.holdout_accuracy;
    let workload_accuracy = workload::run(&config.workload)?.holdout_accuracy;
    phase.close(&mut phase_timings);

    // Stage 6: mitigation check — the characterization re-run must fail.
    let phase = TimedPhase::enter("mitigation");
    let mut hardened = Platform::zcu102(config.seed ^ 0xF0);
    hardened.deploy_virus(VirusConfig::default())?;
    restrict_all_sensors(&mut hardened)?;
    let mitigation_effective = characterize::run(&hardened, &config.characterize).is_err();
    phase.close(&mut phase_timings);

    // Stage 7 (optional): attack-vs-defense sweep.
    let defend_report = match &config.defend {
        None => None,
        Some(defend_config) => {
            let phase = TimedPhase::enter("defend");
            let mut cfg = defend_config.clone();
            cfg.seed = config.seed;
            let report = defend::run(&cfg)?;
            phase.close(&mut phase_timings);
            Some(report)
        }
    };

    // Freeze pool telemetry and the whole metrics registry into the report.
    obs::record_pool_stats("pool.global", &sim_rt::pool::Pool::global().stats());
    let metrics = obs::metrics::snapshot();
    obs::info!("core.campaign", "campaign finished");

    Ok(CampaignReport {
        characterization,
        fingerprint_grid,
        rsa,
        covert_ber,
        tee_accuracy,
        workload_accuracy,
        mitigation_effective,
        defend: defend_report,
        phase_timings,
        metrics,
    })
}

/// One stage's span + stopwatch. Closing records the [`PhaseTiming`]; a
/// stage aborted by `?` drops the span, which still records its latency
/// histogram (`span.core.campaign.{name}.ns`).
struct TimedPhase {
    name: &'static str,
    span: obs::Span,
    /// Distributed-trace span: under a served request this nests the
    /// phase below the request's board span; standalone it is a no-op.
    trace: obs::trace::TraceSpan,
    /// Stopwatch origin from the observability clock — the one allowlisted
    /// wall-clock source, so the `wall-clock` lint stays clean here.
    started_ns: u64,
}

impl TimedPhase {
    fn enter(name: &'static str) -> TimedPhase {
        obs::info!("core.campaign", "stage started"; "stage" => name);
        TimedPhase {
            name,
            span: obs::span!("core.campaign", name),
            trace: obs::trace::span("core.campaign", name),
            started_ns: obs::clock::monotonic_ns(),
        }
    }

    fn close(self, timings: &mut Vec<PhaseTiming>) {
        self.span.close();
        self.trace.close();
        let elapsed_ns = obs::clock::monotonic_ns().saturating_sub(self.started_ns);
        timings.push(PhaseTiming {
            name: self.name,
            elapsed: std::time::Duration::from_nanos(elapsed_ns),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defend::AttackKind;

    #[test]
    fn defend_stage_is_optional_and_validated() {
        // Default config carries no defend stage and the classic stage
        // list (pinned below) stays intact.
        assert!(CampaignConfig::default().defend.is_none());
        // A bad defend config fails validation up front.
        let mut config = CampaignConfig::minimal();
        let mut defend = DefendConfig::quick(AttackKind::Covert);
        defend.strengths = vec![0.7, 0.2];
        config.defend = Some(defend);
        assert!(config.validate().is_err());
    }

    #[test]
    fn configured_defend_stage_appends_its_report() {
        let mut config = CampaignConfig::minimal();
        let mut defend = DefendConfig::quick(AttackKind::Covert);
        defend.strengths = vec![0.8];
        config.defend = Some(defend);
        let report = run(&config).unwrap();
        let names: Vec<&str> = report.phase_timings.iter().map(|p| p.name).collect();
        assert_eq!(names.last(), Some(&"defend"));
        let defend_report = report.defend.as_ref().unwrap();
        assert_eq!(defend_report.points.len(), 1);
        assert!(report.summary().contains("defend sweep     : covert vs"));
    }

    #[test]
    fn minimal_campaign_covers_every_stage() {
        let report = run(&CampaignConfig::minimal()).unwrap();
        assert!(report.characterization.pearson_current > 0.99);
        assert!(report.fingerprint_grid.chance() > 0.0);
        assert_eq!(report.rsa.observations.len(), 3);
        assert!(report.covert_ber < 0.1);
        assert!(report.tee_accuracy >= 0.6);
        assert!(report.workload_accuracy >= 0.6);
        assert!(report.mitigation_effective);

        let summary = report.summary();
        assert!(summary.contains("characterization"));
        assert!(summary.contains("blocks every attack"));
        assert!(summary.contains("total"), "summary lists wall-clock totals");

        // Observability: all six stages timed, in order, and the embedded
        // snapshot carries the sampler's read counters.
        let names: Vec<&str> = report.phase_timings.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            [
                "characterization",
                "fingerprinting",
                "rsa",
                "covert",
                "tee+workload",
                "mitigation"
            ]
        );
        assert!(report.metrics.counter("sampler.reads.current").unwrap_or(0) > 0);
        let profile = report.profile_table();
        assert!(profile.contains("phase timings"));
        assert!(profile.contains("sampler.reads.current"));
    }
}
