use zynq_soc::{PowerDomain, SimTime};

/// The hwmon measurement channel a trace was captured from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Channel {
    /// `curr1_input` — mA resolution; the channel AmpereBleed exploits.
    Current,
    /// `in1_input` — 1.25 mV bus-ADC resolution; nearly information-free
    /// on a stabilized rail.
    Voltage,
    /// `power1_input` — derived from current x voltage with a 25x-coarser
    /// LSB; "almost synchronized to the current measurements, but the low
    /// bits are truncated".
    Power,
}

impl Channel {
    /// All channels.
    pub const ALL: [Channel; 3] = [Channel::Current, Channel::Voltage, Channel::Power];

    /// The sysfs attribute file of this channel.
    pub fn attribute(self) -> &'static str {
        match self {
            Channel::Current => "curr1_input",
            Channel::Voltage => "in1_input",
            Channel::Power => "power1_input",
        }
    }

    /// The typed hwmon attribute of this channel, for the
    /// allocation-free read path ([`hwmon_sim::HwmonFs::read_value`]).
    pub fn hwmon_attribute(self) -> hwmon_sim::Attribute {
        match self {
            Channel::Current => hwmon_sim::Attribute::Curr1Input,
            Channel::Voltage => hwmon_sim::Attribute::In1Input,
            Channel::Power => hwmon_sim::Attribute::Power1Input,
        }
    }

    /// Measurement unit of the attribute's integer value.
    pub fn unit(self) -> &'static str {
        match self {
            Channel::Current => "mA",
            Channel::Voltage => "mV",
            Channel::Power => "uW",
        }
    }
}

impl std::fmt::Display for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Channel::Current => f.write_str("Current"),
            Channel::Voltage => f.write_str("Voltage"),
            Channel::Power => f.write_str("Power"),
        }
    }
}

/// A time series captured from one hwmon attribute.
///
/// # Examples
///
/// ```
/// use amperebleed::{Channel, Trace};
/// use zynq_soc::{PowerDomain, SimTime};
///
/// let t = Trace {
///     domain: PowerDomain::FpgaLogic,
///     channel: Channel::Current,
///     start: SimTime::ZERO,
///     period: SimTime::from_ms(1),
///     samples: vec![100.0, 102.0, 98.0],
/// };
/// assert_eq!(t.mean(), 100.0);
/// assert_eq!(t.duration(), SimTime::from_ms(3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Monitored power domain.
    pub domain: PowerDomain,
    /// Measurement channel.
    pub channel: Channel,
    /// Simulation time of the first sample.
    pub start: SimTime,
    /// Sampling period.
    pub period: SimTime,
    /// Samples in the channel's native unit (mA / mV / µW).
    pub samples: Vec<f64>,
}

impl Trace {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean of the samples; 0 for an empty trace.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Wall-clock span covered by the trace.
    pub fn duration(&self) -> SimTime {
        SimTime::from_nanos(self.period.as_nanos() * self.samples.len() as u64)
    }

    /// Sampling frequency in Hz.
    pub fn sample_rate_hz(&self) -> f64 {
        1.0 / self.period.as_secs_f64()
    }

    /// The samples collected within the first `seconds` of the capture —
    /// the Table III duration sweep.
    pub fn prefix_seconds(&self, seconds: f64) -> &[f64] {
        trace_stats::features::truncate_to_duration(
            &self.samples,
            self.period.as_secs_f64(),
            seconds,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(samples: Vec<f64>) -> Trace {
        Trace {
            domain: PowerDomain::FpgaLogic,
            channel: Channel::Current,
            start: SimTime::ZERO,
            period: SimTime::from_ms(35),
            samples,
        }
    }

    #[test]
    fn channel_attributes() {
        assert_eq!(Channel::Current.attribute(), "curr1_input");
        assert_eq!(Channel::Voltage.attribute(), "in1_input");
        assert_eq!(Channel::Power.attribute(), "power1_input");
        assert_eq!(Channel::Power.unit(), "uW");
        assert_eq!(Channel::Current.to_string(), "Current");
        for c in Channel::ALL {
            assert_eq!(c.hwmon_attribute().file_name(), c.attribute());
        }
    }

    #[test]
    fn trace_statistics() {
        let t = trace(vec![1.0, 2.0, 3.0]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.mean(), 2.0);
        assert_eq!(t.duration(), SimTime::from_ms(105));
        assert!((t.sample_rate_hz() - 1000.0 / 35.0).abs() < 0.01);
    }

    #[test]
    fn empty_trace() {
        let t = trace(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.duration(), SimTime::ZERO);
    }

    #[test]
    fn prefix_selects_duration() {
        let t = trace((0..200).map(f64::from).collect());
        // 35 ms period, 1 s -> 28 samples.
        assert_eq!(t.prefix_seconds(1.0).len(), 28);
        assert_eq!(t.prefix_seconds(100.0).len(), 200);
    }
}
