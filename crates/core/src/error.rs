use std::fmt;

use fpga_fabric::resources::DeployError;
use hwmon_sim::HwmonError;
use trace_stats::StatsError;

/// Error type for attack and platform operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum AttackError {
    /// A sysfs access failed (missing node, permission denied, ...).
    Hwmon(HwmonError),
    /// A victim bitstream did not fit the fabric.
    Deploy(DeployError),
    /// A statistical computation failed (empty trace, zero variance, ...).
    Stats(StatsError),
    /// The requested circuit is not deployed on the platform.
    NotDeployed(&'static str),
    /// A parameter was outside its valid domain.
    InvalidParameter(String),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Hwmon(e) => write!(f, "hwmon access failed: {e}"),
            AttackError::Deploy(e) => write!(f, "deployment failed: {e}"),
            AttackError::Stats(e) => write!(f, "statistics failed: {e}"),
            AttackError::NotDeployed(what) => write!(f, "{what} is not deployed"),
            AttackError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Hwmon(e) => Some(e),
            AttackError::Deploy(e) => Some(e),
            AttackError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HwmonError> for AttackError {
    fn from(e: HwmonError) -> Self {
        AttackError::Hwmon(e)
    }
}

impl From<DeployError> for AttackError {
    fn from(e: DeployError) -> Self {
        AttackError::Deploy(e)
    }
}

impl From<StatsError> for AttackError {
    fn from(e: StatsError) -> Self {
        AttackError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let e = AttackError::from(HwmonError::PermissionDenied("p".into()));
        assert!(e.to_string().contains("hwmon"));
        assert!(e.source().is_some());
        let e = AttackError::NotDeployed("rsa circuit");
        assert!(e.to_string().contains("rsa circuit"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AttackError>();
    }
}
