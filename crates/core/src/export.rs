//! CSV export of traces and experiment reports.
//!
//! The benches print human-readable tables; downstream users plotting the
//! figures (Figure 2 curves, Figure 4 distributions, the Table III grid)
//! want machine-readable data. These helpers render the experiment
//! artifacts as CSV strings — the caller decides where to write them.

use crate::characterize::CharacterizationReport;
use crate::fingerprint::AccuracyGrid;
use crate::rsa_attack::RsaAttackReport;
use crate::Trace;

/// Renders a trace as `time_s,value` rows.
///
/// # Examples
///
/// ```
/// use amperebleed::{Channel, Trace};
/// use zynq_soc::{PowerDomain, SimTime};
///
/// let t = Trace {
///     domain: PowerDomain::FpgaLogic,
///     channel: Channel::Current,
///     start: SimTime::ZERO,
///     period: SimTime::from_ms(35),
///     samples: vec![100.0, 101.0],
/// };
/// let csv = amperebleed::export::trace_to_csv(&t);
/// assert!(csv.starts_with("time_s,current_ma\n"));
/// assert_eq!(csv.lines().count(), 3);
/// ```
pub fn trace_to_csv(trace: &Trace) -> String {
    let unit = match trace.channel {
        crate::Channel::Current => "current_ma",
        crate::Channel::Voltage => "voltage_mv",
        crate::Channel::Power => "power_uw",
    };
    let mut out = format!("time_s,{unit}\n");
    for (i, &v) in trace.samples.iter().enumerate() {
        let t = trace.start.as_secs_f64() + trace.period.as_secs_f64() * i as f64;
        out.push_str(&format!("{t:.6},{v}\n"));
    }
    out
}

/// Renders the Figure 2 sweep as one row per activity level.
pub fn characterization_to_csv(report: &CharacterizationReport) -> String {
    let mut out = String::from(
        "active_groups,current_ma_mean,current_ma_std,voltage_mv_mean,power_uw_mean,ro_count_mean\n",
    );
    for row in &report.rows {
        out.push_str(&format!(
            "{},{:.3},{:.3},{:.4},{:.1},{}\n",
            row.active_groups,
            row.current_ma.mean,
            row.current_ma.std_dev,
            row.voltage_mv.mean,
            row.power_uw.mean,
            row.ro_count
                .as_ref()
                .map_or(String::new(), |s| format!("{:.3}", s.mean)),
        ));
    }
    out
}

/// Renders the Table III grid as `sensor,channel,duration_s,top1,top5`
/// rows.
pub fn grid_to_csv(grid: &AccuracyGrid) -> String {
    let mut out = String::from("domain,channel,duration_s,top1,top5\n");
    for (sc, cells) in &grid.rows {
        for cell in cells {
            out.push_str(&format!(
                "{},{},{},{:.4},{:.4}\n",
                sc.domain, sc.channel, cell.duration_s, cell.top1, cell.top5
            ));
        }
    }
    out
}

/// Renders the Figure 4 observations as one row per key.
pub fn rsa_report_to_csv(report: &RsaAttackReport) -> String {
    let mut out = String::from(
        "hamming_weight,current_ma_mean,current_ma_std,current_ma_min,current_ma_max,\
         power_mw_mean,current_cluster,power_cluster\n",
    );
    for (i, obs) in report.observations.iter().enumerate() {
        out.push_str(&format!(
            "{},{:.3},{:.3},{:.1},{:.1},{:.3},{},{}\n",
            obs.hamming_weight,
            obs.current_ma.mean,
            obs.current_ma.std_dev,
            obs.current_ma.min,
            obs.current_ma.max,
            obs.power_mw.mean,
            report.current_separability.cluster_of[i],
            report.power_separability.cluster_of[i],
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{self, CharacterizeConfig};
    use crate::rsa_attack::{self, RsaAttackConfig};
    use crate::{Channel, Platform};
    use fpga_fabric::virus::VirusConfig;
    use zynq_soc::{PowerDomain, SimTime};

    #[test]
    fn trace_csv_units_follow_channel() {
        let mk = |channel| Trace {
            domain: PowerDomain::FpgaLogic,
            channel,
            start: SimTime::from_ms(40),
            period: SimTime::from_ms(35),
            samples: vec![1.0],
        };
        assert!(trace_to_csv(&mk(Channel::Voltage)).contains("voltage_mv"));
        assert!(trace_to_csv(&mk(Channel::Power)).contains("power_uw"));
        let csv = trace_to_csv(&mk(Channel::Current));
        assert!(csv.contains("0.040000,1"), "{csv}");
    }

    #[test]
    fn characterization_csv_round_trip_row_count() {
        let mut p = Platform::zcu102(90);
        p.deploy_virus(VirusConfig::default()).unwrap();
        let cfg = CharacterizeConfig {
            levels: vec![0, 80, 160],
            samples_per_level: 60,
            ..CharacterizeConfig::quick()
        };
        let report = characterize::run(&p, &cfg).unwrap();
        let csv = characterization_to_csv(&report);
        assert_eq!(csv.lines().count(), 1 + 3);
        // Without an RO bank the last column is empty.
        assert!(csv.lines().nth(1).unwrap().ends_with(','));
    }

    #[test]
    fn rsa_csv_has_one_row_per_key() {
        let cfg = RsaAttackConfig {
            hamming_weights: vec![1, 512, 1024],
            samples_per_key: 600,
            ..RsaAttackConfig::quick()
        };
        let report = rsa_attack::run(&cfg).unwrap();
        let csv = rsa_report_to_csv(&report);
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.contains("hamming_weight"));
        // Fields parse as numbers.
        let row: Vec<&str> = csv.lines().nth(1).unwrap().split(',').collect();
        assert_eq!(row.len(), 8);
        let _: f64 = row[1].parse().unwrap();
    }
}
