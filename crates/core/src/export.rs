//! CSV and JSON Lines export of traces and experiment reports.
//!
//! The benches print human-readable tables; downstream users plotting the
//! figures (Figure 2 curves, Figure 4 distributions, the Table III grid)
//! want machine-readable data. These helpers render the experiment
//! artifacts as CSV or JSONL strings — the caller decides where to write
//! them. The JSONL exporters go through [`sim_rt::ser`]'s record model, so
//! every row type here also implements [`ToRecord`] for callers composing
//! their own exports.

use sim_rt::{Record, ToRecord, Value};

use crate::characterize::{CharacterizationReport, LevelRow};
use crate::fingerprint::{AccuracyCell, AccuracyGrid};
use crate::rsa_attack::{KeyObservation, RsaAttackReport};
use crate::Trace;

/// Renders a trace as `time_s,value` rows.
///
/// # Examples
///
/// ```
/// use amperebleed::{Channel, Trace};
/// use zynq_soc::{PowerDomain, SimTime};
///
/// let t = Trace {
///     domain: PowerDomain::FpgaLogic,
///     channel: Channel::Current,
///     start: SimTime::ZERO,
///     period: SimTime::from_ms(35),
///     samples: vec![100.0, 101.0],
/// };
/// let csv = amperebleed::export::trace_to_csv(&t);
/// assert!(csv.starts_with("time_s,current_ma\n"));
/// assert_eq!(csv.lines().count(), 3);
/// ```
pub fn trace_to_csv(trace: &Trace) -> String {
    let unit = match trace.channel {
        crate::Channel::Current => "current_ma",
        crate::Channel::Voltage => "voltage_mv",
        crate::Channel::Power => "power_uw",
    };
    let mut out = format!("time_s,{unit}\n");
    for (i, &v) in trace.samples.iter().enumerate() {
        let t = trace.start.as_secs_f64() + trace.period.as_secs_f64() * i as f64;
        out.push_str(&format!("{t:.6},{v}\n"));
    }
    out
}

/// Renders the Figure 2 sweep as one row per activity level.
pub fn characterization_to_csv(report: &CharacterizationReport) -> String {
    let mut out = String::from(
        "active_groups,current_ma_mean,current_ma_std,voltage_mv_mean,power_uw_mean,ro_count_mean\n",
    );
    for row in &report.rows {
        out.push_str(&format!(
            "{},{:.3},{:.3},{:.4},{:.1},{}\n",
            row.active_groups,
            row.current_ma.mean,
            row.current_ma.std_dev,
            row.voltage_mv.mean,
            row.power_uw.mean,
            row.ro_count
                .as_ref()
                .map_or(String::new(), |s| format!("{:.3}", s.mean)),
        ));
    }
    out
}

/// Renders the Table III grid as `sensor,channel,duration_s,top1,top5`
/// rows.
pub fn grid_to_csv(grid: &AccuracyGrid) -> String {
    let mut out = String::from("domain,channel,duration_s,top1,top5\n");
    for (sc, cells) in &grid.rows {
        for cell in cells {
            out.push_str(&format!(
                "{},{},{},{:.4},{:.4}\n",
                sc.domain, sc.channel, cell.duration_s, cell.top1, cell.top5
            ));
        }
    }
    out
}

/// Renders the Figure 4 observations as one row per key.
pub fn rsa_report_to_csv(report: &RsaAttackReport) -> String {
    let mut out = String::from(
        "hamming_weight,current_ma_mean,current_ma_std,current_ma_min,current_ma_max,\
         power_mw_mean,current_cluster,power_cluster\n",
    );
    for (i, obs) in report.observations.iter().enumerate() {
        out.push_str(&format!(
            "{},{:.3},{:.3},{:.1},{:.1},{:.3},{},{}\n",
            obs.hamming_weight,
            obs.current_ma.mean,
            obs.current_ma.std_dev,
            obs.current_ma.min,
            obs.current_ma.max,
            obs.power_mw.mean,
            report.current_separability.cluster_of[i],
            report.power_separability.cluster_of[i],
        ));
    }
    out
}

impl ToRecord for LevelRow {
    fn to_record(&self) -> Record {
        let mut r = Record::new();
        r.push("active_groups", self.active_groups)
            .push("current_ma_mean", self.current_ma.mean)
            .push("current_ma_std", self.current_ma.std_dev)
            .push("voltage_mv_mean", self.voltage_mv.mean)
            .push("power_uw_mean", self.power_uw.mean)
            .push("ro_count_mean", self.ro_count.as_ref().map(|s| s.mean))
            .push("tdc_code_mean", self.tdc_code.as_ref().map(|s| s.mean));
        r
    }
}

impl ToRecord for AccuracyCell {
    fn to_record(&self) -> Record {
        let mut r = Record::new();
        r.push("duration_s", self.duration_s)
            .push("top1", self.top1)
            .push("top5", self.top5);
        r
    }
}

impl ToRecord for KeyObservation {
    fn to_record(&self) -> Record {
        let mut r = Record::new();
        r.push("hamming_weight", self.hamming_weight)
            .push("current_ma_mean", self.current_ma.mean)
            .push("current_ma_std", self.current_ma.std_dev)
            .push("current_ma_min", self.current_ma.min)
            .push("current_ma_max", self.current_ma.max)
            .push("power_mw_mean", self.power_mw.mean);
        r
    }
}

/// Renders a trace as JSON Lines: one `{"time_s": .., "<unit>": ..}`
/// object per sample.
pub fn trace_to_jsonl(trace: &Trace) -> String {
    let unit = match trace.channel {
        crate::Channel::Current => "current_ma",
        crate::Channel::Voltage => "voltage_mv",
        crate::Channel::Power => "power_uw",
    };
    let rows: Vec<Record> = trace
        .samples
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let t = trace.start.as_secs_f64() + trace.period.as_secs_f64() * i as f64;
            let mut r = Record::new();
            r.push("time_s", t).push(unit, v);
            r
        })
        .collect();
    sim_rt::to_jsonl(&rows)
}

/// Renders the Figure 2 sweep as JSON Lines, one object per activity
/// level. Unlike the CSV form this keeps the TDC baseline column and uses
/// explicit `null` for undeployed baselines.
pub fn characterization_to_jsonl(report: &CharacterizationReport) -> String {
    sim_rt::to_jsonl(&report.rows)
}

/// Renders the Table III grid as JSON Lines, one object per
/// `channel x duration` cell.
pub fn grid_to_jsonl(grid: &AccuracyGrid) -> String {
    let rows: Vec<Record> = grid
        .rows
        .iter()
        .flat_map(|(sc, cells)| {
            cells.iter().map(|cell| {
                let mut r = Record::new();
                r.push("domain", sc.domain.to_string())
                    .push("channel", sc.channel.to_string());
                for (name, value) in cell.to_record().into_fields() {
                    r.push(name, value);
                }
                r
            })
        })
        .collect();
    sim_rt::to_jsonl(&rows)
}

/// Renders a frozen metrics snapshot as JSON Lines, one object per metric
/// with a uniform schema across counters, gauges, and histograms (the same
/// rows `sim_rt::to_csv` accepts).
pub fn metrics_to_jsonl(snapshot: &obs::MetricsSnapshot) -> String {
    snapshot.to_jsonl()
}

/// Renders a frozen metrics snapshot as CSV, one row per metric.
pub fn metrics_to_csv(snapshot: &obs::MetricsSnapshot) -> String {
    snapshot.to_csv()
}

/// Renders the Figure 4 observations as JSON Lines, one object per key,
/// including the cluster assignments from both channels' separability
/// analyses.
pub fn rsa_report_to_jsonl(report: &RsaAttackReport) -> String {
    let rows: Vec<Record> = report
        .observations
        .iter()
        .enumerate()
        .map(|(i, obs)| {
            let mut r = obs.to_record();
            r.push(
                "current_cluster",
                Value::from(report.current_separability.cluster_of[i]),
            )
            .push(
                "power_cluster",
                Value::from(report.power_separability.cluster_of[i]),
            );
            r
        })
        .collect();
    sim_rt::to_jsonl(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{self, CharacterizeConfig};
    use crate::rsa_attack::{self, RsaAttackConfig};
    use crate::{Channel, Platform};
    use fpga_fabric::virus::VirusConfig;
    use zynq_soc::{PowerDomain, SimTime};

    #[test]
    fn trace_csv_units_follow_channel() {
        let mk = |channel| Trace {
            domain: PowerDomain::FpgaLogic,
            channel,
            start: SimTime::from_ms(40),
            period: SimTime::from_ms(35),
            samples: vec![1.0],
        };
        assert!(trace_to_csv(&mk(Channel::Voltage)).contains("voltage_mv"));
        assert!(trace_to_csv(&mk(Channel::Power)).contains("power_uw"));
        let csv = trace_to_csv(&mk(Channel::Current));
        assert!(csv.contains("0.040000,1"), "{csv}");
    }

    #[test]
    fn characterization_csv_round_trip_row_count() {
        let mut p = Platform::zcu102(90);
        p.deploy_virus(VirusConfig::default()).unwrap();
        let cfg = CharacterizeConfig {
            levels: vec![0, 80, 160],
            samples_per_level: 60,
            ..CharacterizeConfig::quick()
        };
        let report = characterize::run(&p, &cfg).unwrap();
        let csv = characterization_to_csv(&report);
        assert_eq!(csv.lines().count(), 1 + 3);
        // Without an RO bank the last column is empty.
        assert!(csv.lines().nth(1).unwrap().ends_with(','));
    }

    #[test]
    fn trace_jsonl_one_object_per_sample() {
        let t = Trace {
            domain: PowerDomain::FpgaLogic,
            channel: Channel::Current,
            start: SimTime::from_ms(40),
            period: SimTime::from_ms(35),
            samples: vec![100.0, 140.5],
        };
        let jsonl = trace_to_jsonl(&t);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"time_s\":0.04,"), "{}", lines[0]);
        assert!(lines[1].contains("\"current_ma\":140.5"), "{}", lines[1]);
    }

    #[test]
    fn characterization_jsonl_keeps_null_baselines() {
        let mut p = Platform::zcu102(91);
        p.deploy_virus(VirusConfig::default()).unwrap();
        let cfg = CharacterizeConfig {
            levels: vec![0, 160],
            samples_per_level: 60,
            ..CharacterizeConfig::quick()
        };
        let report = characterize::run(&p, &cfg).unwrap();
        let jsonl = characterization_to_jsonl(&report);
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"ro_count_mean\":null"), "{jsonl}");
        assert!(jsonl.contains("\"active_groups\":160"), "{jsonl}");
    }

    #[test]
    fn metrics_csv_renders_empty_histograms_and_weird_names() {
        // A histogram with zero samples has NaN percentiles, and this
        // name needs both comma- and quote-escaping in CSV.
        let name = "test.csv.empty,hist\"q";
        let _ = obs::metrics::histogram(name.to_string());
        obs::metrics::counter("test.csv.plain".to_string()).inc();

        let snapshot = obs::metrics::snapshot();
        let csv = metrics_to_csv(&snapshot);
        let row = csv
            .lines()
            .find(|l| l.starts_with("\"test.csv.empty,hist\"\"q\""))
            .expect("escaped histogram row present");
        assert!(
            !row.contains("null"),
            "non-finite stats must be empty cells, not the word null: {row}"
        );
        assert!(
            row.ends_with(",,,,"),
            "mean/p50/p95/p99 of an empty histogram are empty cells: {row}"
        );

        let jsonl = metrics_to_jsonl(&snapshot);
        let line = jsonl
            .lines()
            .find(|l| l.contains("empty,hist\\\"q"))
            .expect("histogram line present in jsonl");
        assert!(line.contains("\"p99\":null"), "{line}");
    }

    #[test]
    fn rsa_jsonl_matches_csv_rows() {
        let cfg = RsaAttackConfig {
            hamming_weights: vec![1, 1024],
            samples_per_key: 400,
            ..RsaAttackConfig::quick()
        };
        let report = rsa_attack::run(&cfg).unwrap();
        let jsonl = rsa_report_to_jsonl(&report);
        assert_eq!(jsonl.lines().count(), report.observations.len());
        assert!(jsonl.contains("\"hamming_weight\":1024"), "{jsonl}");
        assert!(jsonl.contains("\"current_cluster\":"), "{jsonl}");
    }

    #[test]
    fn rsa_csv_has_one_row_per_key() {
        let cfg = RsaAttackConfig {
            hamming_weights: vec![1, 512, 1024],
            samples_per_key: 600,
            ..RsaAttackConfig::quick()
        };
        let report = rsa_attack::run(&cfg).unwrap();
        let csv = rsa_report_to_csv(&report);
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.contains("hamming_weight"));
        // Fields parse as numbers.
        let row: Vec<&str> = csv.lines().nth(1).unwrap().split(',').collect();
        assert_eq!(row.len(), 8);
        let _: f64 = row[1].parse().unwrap();
    }
}
