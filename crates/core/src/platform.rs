use std::collections::BTreeMap;
use std::sync::Arc;

use fpga_fabric::covert::{CovertConfig, CovertTransmitter};
use fpga_fabric::enclave::EnclaveCircuit;
use fpga_fabric::resources::FabricInventory;
use fpga_fabric::ring_oscillator::{RoBank, RoConfig};
use fpga_fabric::rsa::{RsaCircuit, RsaConfig, RsaKey};
use fpga_fabric::tdc::{TdcConfig, TdcSensor};
use fpga_fabric::virus::{PowerVirusArray, VirusConfig};
use hwmon_sim::{Attribute, HwmonDevice, HwmonFs, RailProbe, SensorHandle};
use sim_rt::lockorder::TrackedMutex;
use std::sync::RwLock;
use zynq_soc::board::BoardSpec;
use zynq_soc::cpu::{CpuActivityConfig, CpuBackgroundLoad};
use zynq_soc::{
    CompositeLoad, ConstantLoad, OpPointCache, Pdn, PowerDomain, PowerLoad, RailOperatingPoint,
    SimTime, StaticFabricLoad,
};

use dpu::{DpuAccelerator, DpuConfig};

use crate::{AttackError, Result};

/// Electrical state shared between the hwmon sensors and the loads: every
/// deployed circuit plus the per-domain PDN models.
struct SocModel {
    loads: RwLock<CompositeLoad>,
    pdn: BTreeMap<PowerDomain, Pdn>,
    /// Memoized `(domain, t)` operating points, invalidated by the global
    /// load-control epoch. An INA226 conversion samples the same instant
    /// for current, voltage and power, and averaging steps are revisited
    /// whenever captures overlap a conversion window — this cache turns
    /// those repeats into a lookup instead of a composite-load walk.
    op_cache: OpPointCache,
}

impl SocModel {
    fn total_current_ma(&self, t: SimTime, domain: PowerDomain) -> f64 {
        self.loads
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .current_ma(t, domain)
    }

    /// The full electrical operating point of a rail at `t`: present and
    /// 1 µs-previous current plus the PDN rail voltage (including the
    /// transient `L * dI/dt` term), computed in a single composite-load
    /// pass under one read-lock hold. Bit-identical to evaluating
    /// `total_current_ma` twice and `Pdn::rail_voltage` separately.
    fn operating_point(&self, t: SimTime, domain: PowerDomain) -> RailOperatingPoint {
        let epoch = zynq_soc::load_control_epoch();
        if let Some(point) = self.op_cache.get(domain, t, epoch) {
            return point;
        }
        let t_prev = t.saturating_sub(SimTime::from_us(1));
        let (i_now, i_prev) = self
            .loads
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .current_ma_pair(t, t_prev, domain);
        // Every PowerDomain key is inserted at construction. sim-lint: allow(panic-path)
        let point = self.pdn[&domain].operating_point(i_now, i_prev);
        self.op_cache.insert(domain, t, epoch, point);
        point
    }

    fn rail_voltage(&self, t: SimTime, domain: PowerDomain) -> f64 {
        self.operating_point(t, domain).volts
    }

    /// Batched [`operating_point`](Self::operating_point) for a
    /// conversion's averaging steps: one read-lock hold and one PDN
    /// lookup serve the whole window. Skips the keyed cache — averaging
    /// instants are effectively never revisited — but each element is
    /// bit-identical to the per-instant path.
    fn operating_points(&self, times: &[SimTime], domain: PowerDomain) -> Vec<(f64, f64)> {
        // Every PowerDomain key is inserted at construction. sim-lint: allow(panic-path)
        let pdn = &self.pdn[&domain];
        let loads = self
            .loads
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        times
            .iter()
            .map(|&t| {
                let t_prev = t.saturating_sub(SimTime::from_us(1));
                let (i_now, i_prev) = loads.current_ma_pair(t, t_prev, domain);
                let point = pdn.operating_point(i_now, i_prev);
                (point.amps(), point.volts)
            })
            .collect()
    }
}

/// A rail probe binding one power domain of the shared SoC model to an
/// INA226 front-end.
struct DomainProbe {
    soc: Arc<SocModel>,
    domain: PowerDomain,
}

impl RailProbe for DomainProbe {
    fn operating_point(&self, t: SimTime) -> (f64, f64) {
        let point = self.soc.operating_point(t, self.domain);
        (point.amps(), point.volts)
    }

    fn operating_points(&self, times: &[SimTime]) -> Vec<(f64, f64)> {
        self.soc.operating_points(times, self.domain)
    }
}

/// The simulated ARM-FPGA SoC platform under attack.
///
/// `Platform::zcu102` assembles the paper's experimental machine: a ZCU102
/// board with its background loads (fabric leakage, four Cortex-A53 cores
/// of OS activity, DDR standby current) and the four sensitive INA226
/// sensors of Table II exposed through hwmon. Victim circuits are deployed
/// on top, with fabric resource checking.
///
/// # Examples
///
/// See the [crate-level documentation](crate) for a quickstart.
pub struct Platform {
    board: BoardSpec,
    fabric: FabricInventory,
    soc: Arc<SocModel>,
    hwmon: HwmonFs,
    sensor_index: BTreeMap<PowerDomain, usize>,
    /// Pre-rendered sysfs paths, one per `(domain, Attribute::ALL)` slot,
    /// so `sensor_path` hands out `&str` instead of allocating per read.
    sensor_paths: BTreeMap<PowerDomain, [String; 6]>,
    seed: u64,
    virus: Option<Arc<PowerVirusArray>>,
    rsa: Option<Arc<RsaCircuit>>,
    dpu: Option<Arc<DpuAccelerator>>,
    ro: Option<TrackedMutex<RoBank>>,
    tdc: Option<TrackedMutex<TdcSensor>>,
    covert: Option<Arc<CovertTransmitter>>,
    enclave: Option<Arc<EnclaveCircuit>>,
}

impl Platform {
    /// Assembles the ZCU102 experimental machine with default background
    /// activity. `seed` fixes every stochastic component.
    pub fn zcu102(seed: u64) -> Self {
        Platform::for_board(BoardSpec::zcu102(), seed)
    }

    /// Assembles a platform for any board of the Table I catalog. The
    /// paper's future work asks whether other SoCs with on-die current
    /// sensors are equally vulnerable; every catalog board exposes the
    /// same four-domain sensitive-sensor layout, so the attack transfers.
    pub fn for_board(board: BoardSpec, seed: u64) -> Self {
        let fabric = match board.family {
            zynq_soc::board::FpgaFamily::ZynqUltraScalePlus => FabricInventory::zcu102(),
            zynq_soc::board::FpgaFamily::Versal => FabricInventory::versal(),
        };

        let mut loads = CompositeLoad::new();
        // Fabric static power: deployed-but-idle logic, clock trees.
        loads.push(Arc::new(StaticFabricLoad::new(480.0, seed ^ 0x01)));
        // OS background on the ARM cores.
        loads.push(Arc::new(CpuBackgroundLoad::new(
            CpuActivityConfig::default(),
            seed ^ 0x02,
        )));
        // DDR standby/refresh current.
        loads.push(Arc::new(ConstantLoad::new(PowerDomain::Ddr, 140.0)));

        // Regulator setpoint tolerance: every physical board (and every
        // boot) trims its regulators slightly differently, so the absolute
        // rail voltage carries board/run identity rather than victim
        // identity. This is a key reason the voltage channel fingerprints
        // so poorly across captures (Table III: 0.116 top-1) even though
        // within one capture it correlates with load (Figure 2).
        let mut trim = zynq_soc::GaussianNoise::new(seed ^ 0x7472_696D); // "trim"
        let pdn = PowerDomain::ALL
            .iter()
            .map(|&d| {
                let mut p = Pdn::for_board(&board, d);
                let offset = trim.sample(0.0, 1.3e-3);
                p.v_set = (p.v_set + offset).clamp(p.band.min_v + 2.0e-3, p.band.max_v - 2.0e-3);
                (d, p)
            })
            .collect();

        let soc = Arc::new(SocModel {
            loads: RwLock::new(loads),
            pdn,
            op_cache: OpPointCache::new(),
        });

        // Register the four sensitive sensors of Table II. Shunt values
        // come from the board's monitoring design; current LSBs are chosen
        // per-rail so the calibration register fits (and the hwmon driver
        // rounds everything to 1 mA anyway).
        let mut hwmon = HwmonFs::new();
        let mut sensor_index = BTreeMap::new();
        for (k, spec) in board.sensitive_sensors().iter().enumerate() {
            let current_lsb = match spec.domain {
                PowerDomain::FpgaLogic => 0.5e-3,
                PowerDomain::Ddr => 0.25e-3,
                PowerDomain::FullPowerCpu => 0.25e-3,
                PowerDomain::LowPowerCpu => 0.125e-3,
            };
            let probe = Arc::new(DomainProbe {
                soc: Arc::clone(&soc),
                domain: spec.domain,
            });
            let device = HwmonDevice::new(
                spec.designator,
                spec.shunt_milliohm / 1_000.0,
                current_lsb,
                probe,
                seed ^ (0x10 + k as u64),
            );
            let idx = hwmon.register(device);
            sensor_index.insert(spec.domain, idx);
        }

        let sensor_paths = sensor_index
            .iter()
            .map(|(&domain, &idx)| {
                let paths = Attribute::ALL
                    .map(|attr| format!("/sys/class/hwmon/hwmon{idx}/{}", attr.file_name()));
                (domain, paths)
            })
            .collect();

        Platform {
            board,
            fabric,
            soc,
            hwmon,
            sensor_index,
            sensor_paths,
            seed,
            virus: None,
            rsa: None,
            dpu: None,
            ro: None,
            tdc: None,
            covert: None,
            enclave: None,
        }
    }

    /// The board this platform models.
    pub fn board(&self) -> &BoardSpec {
        &self.board
    }

    /// The fabric resource inventory (with deployed designs).
    pub fn fabric(&self) -> &FabricInventory {
        &self.fabric
    }

    /// The simulated hwmon tree (attacker-visible interface).
    pub fn hwmon(&self) -> &HwmonFs {
        &self.hwmon
    }

    /// Mutable access to the hwmon tree (for the Section V mitigation).
    pub fn hwmon_mut(&mut self) -> &mut HwmonFs {
        &mut self.hwmon
    }

    /// Platform seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sysfs path of a domain's sensor attribute, e.g.
    /// `/sys/class/hwmon/hwmon2/curr1_input` for the FPGA rail. Returns a
    /// pre-rendered borrowed path — no per-call allocation.
    ///
    /// # Panics
    ///
    /// Panics if `attribute` is not a hwmon attribute file name.
    pub fn sensor_path(&self, domain: PowerDomain, attribute: &str) -> &str {
        let attr = Attribute::from_file_name(attribute)
            // Contract documented under `# Panics`. sim-lint: allow(panic-path)
            .unwrap_or_else(|| panic!("unknown hwmon attribute {attribute:?}"));
        let slot = Attribute::ALL
            .iter()
            .position(|a| *a == attr)
            // Just matched against ALL above. sim-lint: allow(panic-path)
            .expect("Attribute::ALL is exhaustive");
        // Paths for every domain and slot are pre-rendered at
        // construction. sim-lint: allow(panic-path)
        &self.sensor_paths[&domain][slot]
    }

    /// Pre-resolved handle for a domain's sensor attribute — the typed
    /// equivalent of [`sensor_path`](Self::sensor_path) for use with
    /// [`HwmonFs::read_value`].
    pub fn sensor_handle(&self, domain: PowerDomain, attr: Attribute) -> SensorHandle {
        // Every PowerDomain key is inserted at construction. sim-lint: allow(panic-path)
        SensorHandle::new(self.sensor_index[&domain], attr)
    }

    /// True (un-quantized) rail current in mA — ground truth for tests and
    /// calibration, not visible to the attacker.
    pub fn ground_truth_ma(&self, domain: PowerDomain, t: SimTime) -> f64 {
        self.soc.total_current_ma(t, domain)
    }

    /// True rail voltage in volts — ground truth.
    pub fn ground_truth_volts(&self, domain: PowerDomain, t: SimTime) -> f64 {
        self.soc.rail_voltage(t, domain)
    }

    fn attach_load(&self, load: Arc<dyn PowerLoad>) {
        self.soc
            .loads
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(load);
        zynq_soc::invalidate_load_caches();
    }

    /// Deploys the 160k-instance power-virus array (Figure 2 victim).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Deploy`] if the fabric lacks resources.
    pub fn deploy_virus(&mut self, config: VirusConfig) -> Result<Arc<PowerVirusArray>> {
        let virus = Arc::new(PowerVirusArray::new(config, self.seed ^ 0x100));
        self.fabric.deploy(&virus.bitstream())?;
        self.attach_load(Arc::clone(&virus) as Arc<dyn PowerLoad>);
        self.virus = Some(Arc::clone(&virus));
        Ok(virus)
    }

    /// Deploys the RSA-1024 circuit with a sealed key (Figure 4 victim).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Deploy`] if the fabric lacks resources.
    pub fn deploy_rsa(&mut self, config: RsaConfig, key: RsaKey) -> Result<Arc<RsaCircuit>> {
        let rsa = Arc::new(RsaCircuit::new(config, key, self.seed ^ 0x200));
        self.fabric.deploy(&rsa.bitstream())?;
        self.attach_load(Arc::clone(&rsa) as Arc<dyn PowerLoad>);
        self.rsa = Some(Arc::clone(&rsa));
        Ok(rsa)
    }

    /// Deploys the DPU accelerator (Table III / Figure 3 victim).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Deploy`] if the fabric lacks resources.
    pub fn deploy_dpu(&mut self, config: DpuConfig) -> Result<Arc<DpuAccelerator>> {
        let dpu = Arc::new(DpuAccelerator::new(config, self.seed ^ 0x300));
        // B4096-class DPU utilization on the ZCU102.
        let bs = fpga_fabric::resources::Bitstream::new(
            "dpu-b4096",
            fpga_fabric::resources::Utilization {
                luts: 60_000,
                ffs: 100_000,
                dsps: 700,
                bram_kb: 4_000,
            },
        )
        .encrypted();
        self.fabric.deploy(&bs)?;
        self.attach_load(Arc::clone(&dpu) as Arc<dyn PowerLoad>);
        self.dpu = Some(Arc::clone(&dpu));
        Ok(dpu)
    }

    /// Deploys the co-resident ring-oscillator sensor bank — the crafted
    /// circuit of the baseline attack (requires fabric access, which
    /// AmpereBleed itself does not).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Deploy`] if the fabric lacks resources.
    pub fn deploy_ro_bank(&mut self, config: RoConfig) -> Result<()> {
        let bank = RoBank::new(config, self.seed ^ 0x400);
        self.fabric.deploy(&bank.bitstream())?;
        self.ro = Some(TrackedMutex::new("platform.ro", bank));
        Ok(())
    }

    /// Deploys a covert-channel transmitter broadcasting `payload`
    /// cyclically (the fabric-to-software covert channel case study).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Deploy`] if the fabric lacks resources.
    pub fn deploy_covert_transmitter(
        &mut self,
        config: CovertConfig,
        payload: &[u8],
    ) -> Result<Arc<CovertTransmitter>> {
        let tx = Arc::new(CovertTransmitter::new(config, payload, self.seed ^ 0x500));
        self.fabric.deploy(&tx.bitstream())?;
        self.attach_load(Arc::clone(&tx) as Arc<dyn PowerLoad>);
        self.covert = Some(Arc::clone(&tx));
        Ok(tx)
    }

    /// Deploys an FPGA-TEE enclave circuit (the TEE future-work case
    /// study): logically isolated, but its power flows through the
    /// monitored rails.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Deploy`] if the fabric lacks resources.
    pub fn deploy_enclave(&mut self) -> Result<Arc<EnclaveCircuit>> {
        let enclave = Arc::new(EnclaveCircuit::new(self.seed ^ 0x600));
        self.fabric.deploy(&enclave.bitstream())?;
        self.attach_load(Arc::clone(&enclave) as Arc<dyn PowerLoad>);
        self.enclave = Some(Arc::clone(&enclave));
        Ok(enclave)
    }

    /// The deployed virus array, if any.
    pub fn virus(&self) -> Option<&Arc<PowerVirusArray>> {
        self.virus.as_ref()
    }

    /// The deployed covert transmitter, if any.
    pub fn covert_transmitter(&self) -> Option<&Arc<CovertTransmitter>> {
        self.covert.as_ref()
    }

    /// The deployed enclave, if any.
    pub fn enclave(&self) -> Option<&Arc<EnclaveCircuit>> {
        self.enclave.as_ref()
    }

    /// The deployed RSA circuit, if any.
    pub fn rsa(&self) -> Option<&Arc<RsaCircuit>> {
        self.rsa.as_ref()
    }

    /// The deployed DPU, if any.
    pub fn dpu(&self) -> Option<&Arc<DpuAccelerator>> {
        self.dpu.as_ref()
    }

    /// Deploys a carry-chain TDC sensor — the post-RO-ban crafted-circuit
    /// baseline (RDS/1LUTSensor-class).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Deploy`] if the fabric lacks resources.
    pub fn deploy_tdc(&mut self, config: TdcConfig) -> Result<()> {
        let sensor = TdcSensor::new(config, self.seed ^ 0x700);
        self.fabric.deploy(&sensor.bitstream())?;
        self.tdc = Some(TrackedMutex::new("platform.tdc", sensor));
        Ok(())
    }

    /// Samples the RO bank's mean counter at time `t` (the baseline
    /// attacker's readout). The RO sees the true FPGA rail voltage,
    /// including droop the stabilizer could not regulate away.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::NotDeployed`] if no RO bank is deployed.
    pub fn sample_ro(&self, t: SimTime) -> Result<f64> {
        let bank = self
            .ro
            .as_ref()
            .ok_or(AttackError::NotDeployed("ring-oscillator bank"))?;
        let v = self.soc.rail_voltage(t, PowerDomain::FpgaLogic);
        Ok(bank.lock().sample_mean_count(v))
    }

    /// Samples the TDC's thermometer code at time `t`.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::NotDeployed`] if no TDC is deployed.
    pub fn sample_tdc(&self, t: SimTime) -> Result<u32> {
        let sensor = self
            .tdc
            .as_ref()
            .ok_or(AttackError::NotDeployed("tdc sensor"))?;
        let v = self.soc.rail_voltage(t, PowerDomain::FpgaLogic);
        Ok(sensor.lock().sample(v))
    }
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("board", &self.board.name)
            .field("sensors", &self.sensor_index)
            .field("virus", &self.virus.is_some())
            .field("rsa", &self.rsa.is_some())
            .field("dpu", &self.dpu.is_some())
            .field("ro", &self.ro.is_some())
            .field("tdc", &self.tdc.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwmon_sim::Privilege;

    #[test]
    fn zcu102_has_four_sensitive_sensors() {
        let p = Platform::zcu102(1);
        assert_eq!(p.hwmon().len(), 4);
        for d in PowerDomain::ALL {
            let path = p.sensor_path(d, "name");
            let name = p
                .hwmon()
                .read(path, SimTime::ZERO, Privilege::User)
                .unwrap();
            assert_eq!(name.trim(), d.ina226_designator());
        }
    }

    #[test]
    fn background_currents_are_plausible() {
        let p = Platform::zcu102(2);
        let t = SimTime::from_ms(50);
        let fpga = p.ground_truth_ma(PowerDomain::FpgaLogic, t);
        assert!((400.0..600.0).contains(&fpga), "fpga {fpga}");
        let cpu = p.ground_truth_ma(PowerDomain::FullPowerCpu, t);
        assert!(cpu >= 320.0, "cpu {cpu}");
        let ddr = p.ground_truth_ma(PowerDomain::Ddr, t);
        assert!((100.0..300.0).contains(&ddr), "ddr {ddr}");
    }

    #[test]
    fn rail_voltage_stays_in_band() {
        let mut p = Platform::zcu102(3);
        let virus = p.deploy_virus(VirusConfig::default()).unwrap();
        for groups in [0u32, 80, 160] {
            virus.activate_groups(groups).unwrap();
            let v = p.ground_truth_volts(PowerDomain::FpgaLogic, SimTime::from_ms(7));
            assert!(
                p.board().fpga_voltage_band.contains(v),
                "{groups} groups -> {v} V"
            );
        }
    }

    #[test]
    fn virus_activation_visible_via_hwmon() {
        let mut p = Platform::zcu102(4);
        let virus = p.deploy_virus(VirusConfig::default()).unwrap();
        let read = |p: &Platform, t: SimTime| -> i64 {
            p.hwmon()
                .read(
                    p.sensor_path(PowerDomain::FpgaLogic, "curr1_input"),
                    t,
                    Privilege::User,
                )
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        virus.activate_groups(0).unwrap();
        let idle = read(&p, SimTime::from_ms(40));
        virus.activate_groups(160).unwrap();
        let busy = read(&p, SimTime::from_ms(75));
        assert!(
            busy - idle > 5_000,
            "expected >5 A of visible swing, got {idle} -> {busy}"
        );
    }

    #[test]
    fn deployment_accounting() {
        let mut p = Platform::zcu102(5);
        assert!(p.virus().is_none());
        p.deploy_virus(VirusConfig::default()).unwrap();
        p.deploy_rsa(
            RsaConfig::default(),
            RsaKey::with_hamming_weight(512, 1).unwrap(),
        )
        .unwrap();
        p.deploy_dpu(DpuConfig::default()).unwrap();
        p.deploy_ro_bank(RoConfig::default()).unwrap();
        assert!(p.virus().is_some());
        assert!(p.rsa().is_some());
        assert!(p.dpu().is_some());
        assert_eq!(p.fabric().deployed().len(), 4);
    }

    #[test]
    fn ro_requires_deployment() {
        let p = Platform::zcu102(6);
        assert!(matches!(
            p.sample_ro(SimTime::ZERO),
            Err(AttackError::NotDeployed(_))
        ));
    }

    #[test]
    fn ro_counts_react_to_virus_load() {
        let mut p = Platform::zcu102(7);
        let virus = p.deploy_virus(VirusConfig::default()).unwrap();
        p.deploy_ro_bank(RoConfig::default()).unwrap();
        let mean = |p: &Platform, n: u64| {
            (0..n)
                .map(|k| p.sample_ro(SimTime::from_ms(40 + k)).unwrap())
                .sum::<f64>()
                / n as f64
        };
        virus.activate_groups(0).unwrap();
        let idle = mean(&p, 300);
        virus.activate_groups(160).unwrap();
        let busy = mean(&p, 300);
        assert!(
            busy < idle,
            "RO count must drop under load: {idle} -> {busy}"
        );
        let rel = (idle - busy) / idle;
        assert!(rel < 0.02, "stabilizer must cap RO variation ({rel})");
    }

    #[test]
    fn tdc_baseline_sees_less_than_current_channel() {
        let mut p = Platform::zcu102(9);
        let virus = p.deploy_virus(VirusConfig::default()).unwrap();
        p.deploy_tdc(fpga_fabric::tdc::TdcConfig::default())
            .unwrap();
        let mean_tdc = |p: &Platform, base_ms: u64| {
            (0..400)
                .map(|k| p.sample_tdc(SimTime::from_ms(base_ms + k)).unwrap() as f64)
                .sum::<f64>()
                / 400.0
        };
        virus.activate_groups(0).unwrap();
        let idle = mean_tdc(&p, 40);
        virus.activate_groups(160).unwrap();
        let busy = mean_tdc(&p, 2_000);
        let rel = (idle - busy).abs() / idle;
        assert!(rel < 0.02, "stabilizer caps TDC variation ({rel})");
        // The hwmon current channel sees the same event at full scale.
        let i_idle = 880.0;
        let i_busy = 7_280.0;
        let current_rel = (i_busy - i_idle) / ((i_busy + i_idle) / 2.0);
        assert!(current_rel / rel.max(1e-6) > 50.0);
    }

    #[test]
    fn tdc_requires_deployment() {
        let p = Platform::zcu102(10);
        assert!(matches!(
            p.sample_tdc(SimTime::ZERO),
            Err(AttackError::NotDeployed(_))
        ));
    }

    #[test]
    fn debug_format_mentions_board() {
        let p = Platform::zcu102(8);
        assert!(format!("{p:?}").contains("ZCU102"));
    }

    #[test]
    fn sensor_paths_are_prerendered() {
        let p = Platform::zcu102(20);
        let a = p.sensor_path(PowerDomain::FpgaLogic, "curr1_input");
        let b = p.sensor_path(PowerDomain::FpgaLogic, "curr1_input");
        // Same borrowed bytes both times — the path is rendered once at
        // construction, not per call.
        assert!(std::ptr::eq(a, b));
        let h = p.sensor_handle(PowerDomain::FpgaLogic, Attribute::Curr1Input);
        assert_eq!(h.path(), a);
        assert_eq!(
            p.hwmon().resolve(a).unwrap(),
            h,
            "cached path and typed handle must name the same file"
        );
    }

    #[test]
    #[should_panic(expected = "unknown hwmon attribute")]
    fn sensor_path_rejects_unknown_attribute() {
        let p = Platform::zcu102(21);
        let _ = p.sensor_path(PowerDomain::FpgaLogic, "temp1_input");
    }

    #[test]
    fn operating_point_cache_preserves_ground_truth() {
        // Same seed, two platforms: one reads the voltage twice (second
        // read is a cache hit), the other once. All observations must be
        // bit-identical — the cache may never change the physics.
        let t = SimTime::from_ms(41);
        let mut a = Platform::zcu102(22);
        let va = a.deploy_virus(VirusConfig::default()).unwrap();
        va.activate_groups(80).unwrap();
        let first = a.ground_truth_volts(PowerDomain::FpgaLogic, t);
        let second = a.ground_truth_volts(PowerDomain::FpgaLogic, t);
        assert_eq!(first.to_bits(), second.to_bits());

        let mut b = Platform::zcu102(22);
        let vb = b.deploy_virus(VirusConfig::default()).unwrap();
        vb.activate_groups(80).unwrap();
        let fresh = b.ground_truth_volts(PowerDomain::FpgaLogic, t);
        assert_eq!(first.to_bits(), fresh.to_bits());

        // A control change must invalidate: activating more groups moves
        // the cached instant's value.
        va.activate_groups(160).unwrap();
        let after = a.ground_truth_volts(PowerDomain::FpgaLogic, t);
        assert_ne!(first.to_bits(), after.to_bits());
    }
}
