use hwmon_sim::Privilege;
use zynq_soc::{PowerDomain, SimTime};

use crate::{AttackError, Channel, Platform, Result, Trace};

/// The attacker's sampling loop: an (optionally unprivileged) process that
/// polls hwmon attribute files at a fixed rate.
///
/// This is the entire attack apparatus of AmpereBleed — no crafted
/// circuit, no fabric access, just `open`/`read` on world-readable sysfs
/// nodes. The sampler is bound to a platform and a privilege level; the
/// Section V mitigation makes the unprivileged variant fail with
/// `PermissionDenied`.
///
/// # Examples
///
/// See the [crate-level documentation](crate) for a quickstart.
#[derive(Debug, Clone, Copy)]
pub struct CurrentSampler<'a> {
    platform: &'a Platform,
    privilege: Privilege,
}

impl<'a> CurrentSampler<'a> {
    /// An unprivileged attacker process (the paper's threat model).
    pub fn unprivileged(platform: &'a Platform) -> Self {
        CurrentSampler {
            platform,
            privilege: Privilege::User,
        }
    }

    /// A root process (for mitigation comparisons and benign monitoring).
    pub fn privileged(platform: &'a Platform) -> Self {
        CurrentSampler {
            platform,
            privilege: Privilege::Root,
        }
    }

    /// The privilege level this sampler runs at.
    pub fn privilege(&self) -> Privilege {
        self.privilege
    }

    fn count_read(channel: Channel) {
        match channel {
            Channel::Current => obs::counter!("sampler.reads.current").inc(),
            Channel::Voltage => obs::counter!("sampler.reads.voltage").inc(),
            Channel::Power => obs::counter!("sampler.reads.power").inc(),
        }
    }

    /// Validates capture parameters and derives the sampling period,
    /// rejecting windows whose last timestamp would overflow the u64
    /// nanosecond simulation clock.
    fn capture_period(rate_hz: f64, start: SimTime, count: usize) -> Result<SimTime> {
        if rate_hz <= 0.0 || rate_hz.is_nan() {
            return Err(AttackError::InvalidParameter(
                "sampling rate must be positive".into(),
            ));
        }
        if count == 0 {
            return Err(AttackError::InvalidParameter(
                "sample count must be non-zero".into(),
            ));
        }
        let period = SimTime::from_secs_f64(1.0 / rate_hz);
        period
            .as_nanos()
            .checked_mul(count as u64 - 1)
            .and_then(|span| start.as_nanos().checked_add(span))
            .ok_or_else(|| {
                AttackError::InvalidParameter(
                    "capture window overflows the u64 nanosecond clock".into(),
                )
            })?;
        Ok(period)
    }

    /// Reads one sample of `channel` on `domain` at simulation time `t`.
    ///
    /// Uses the typed hwmon path: a pre-resolved handle and an integer
    /// read, no path rendering or string parsing. The hwmon integers are
    /// far below 2^53, so the `i64 -> f64` conversion is exact and the
    /// result is bit-identical to parsing the sysfs string.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Hwmon`] on sysfs failures (notably
    /// `PermissionDenied` under the mitigation).
    pub fn read_once(&self, domain: PowerDomain, channel: Channel, t: SimTime) -> Result<f64> {
        Self::count_read(channel);
        let handle = self
            .platform
            .sensor_handle(domain, channel.hwmon_attribute());
        match self.platform.hwmon().read_value(handle, t, self.privilege) {
            Ok(v) => Ok(v as f64),
            Err(e) => {
                obs::counter!("sampler.read_errors").inc();
                Err(e.into())
            }
        }
    }

    /// Captures `count` samples at `rate_hz`, starting at `start`.
    ///
    /// Sampling faster than the sensor's update interval yields repeated
    /// values (value-hold), exactly as on hardware — the RSA attack
    /// samples at 1 kHz against a 35 ms update interval.
    ///
    /// # Errors
    ///
    /// * [`AttackError::InvalidParameter`] if `rate_hz` is not positive or
    ///   `count` is zero.
    /// * [`AttackError::Hwmon`] on sysfs failures.
    pub fn capture(
        &self,
        domain: PowerDomain,
        channel: Channel,
        start: SimTime,
        rate_hz: f64,
        count: usize,
    ) -> Result<Trace> {
        let period = Self::capture_period(rate_hz, start, count)?;
        let started = obs::clock::monotonic_ns();
        let handle = self
            .platform
            .sensor_handle(domain, channel.hwmon_attribute());
        let fs = self.platform.hwmon();
        let mut samples = Vec::with_capacity(count);
        for k in 0..count {
            let t = start + SimTime::from_nanos(period.as_nanos() * k as u64);
            Self::count_read(channel);
            match fs.read_value(handle, t, self.privilege) {
                Ok(v) => samples.push(v as f64),
                Err(e) => {
                    obs::counter!("sampler.read_errors").inc();
                    return Err(e.into());
                }
            }
        }
        obs::histogram!("sampler.capture.ns")
            .observe(obs::clock::monotonic_ns().saturating_sub(started));
        obs::debug!(
            "core.sampler",
            sim = start.as_nanos(),
            "capture complete";
            "channel" => channel.attribute(),
            "rate_hz" => rate_hz,
            "count" => count as u64
        );
        Ok(Trace {
            domain,
            channel,
            start,
            period,
            samples,
        })
    }

    /// Captures all three channels of one domain over the same window
    /// (current, voltage, power), as the characterization experiment does.
    ///
    /// The timestamp sequence is walked once for all three channels: at
    /// each instant the current read clocks the sensor's conversion and
    /// the voltage/power reads return values latched from that same
    /// conversion — one conversion per boundary instead of three, which is
    /// also how a real INA226 behaves (all result registers are latched
    /// together). The current trace is bit-identical to a standalone
    /// [`capture`](Self::capture) of [`Channel::Current`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`CurrentSampler::capture`].
    pub fn capture_all_channels(
        &self,
        domain: PowerDomain,
        start: SimTime,
        rate_hz: f64,
        count: usize,
    ) -> Result<[Trace; 3]> {
        let period = Self::capture_period(rate_hz, start, count)?;
        let started = obs::clock::monotonic_ns();
        let handles =
            Channel::ALL.map(|c| self.platform.sensor_handle(domain, c.hwmon_attribute()));
        let fs = self.platform.hwmon();
        let mut samples = [
            Vec::with_capacity(count),
            Vec::with_capacity(count),
            Vec::with_capacity(count),
        ];
        for k in 0..count {
            let t = start + SimTime::from_nanos(period.as_nanos() * k as u64);
            let chans = Channel::ALL.iter().zip(&handles).zip(&mut samples);
            for ((&channel, &handle), series) in chans {
                Self::count_read(channel);
                match fs.read_value(handle, t, self.privilege) {
                    Ok(v) => series.push(v as f64),
                    Err(e) => {
                        obs::counter!("sampler.read_errors").inc();
                        return Err(e.into());
                    }
                }
            }
        }
        obs::histogram!("sampler.capture.ns")
            .observe(obs::clock::monotonic_ns().saturating_sub(started));
        obs::debug!(
            "core.sampler",
            sim = start.as_nanos(),
            "capture complete";
            "channel" => "all",
            "rate_hz" => rate_hz,
            "count" => count as u64
        );
        let [s0, s1, s2] = samples;
        let [c0, c1, c2] = Channel::ALL;
        let trace = |channel, samples| Trace {
            domain,
            channel,
            start,
            period,
            samples,
        };
        Ok([trace(c0, s0), trace(c1, s1), trace(c2, s2)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_fabric::virus::VirusConfig;

    fn platform_with_virus(active: u32) -> Platform {
        let mut p = Platform::zcu102(21);
        let virus = p.deploy_virus(VirusConfig::default()).unwrap();
        virus.activate_groups(active).unwrap();
        p
    }

    #[test]
    fn capture_shape_and_units() {
        let p = platform_with_virus(40);
        let s = CurrentSampler::unprivileged(&p);
        let t = s
            .capture(
                PowerDomain::FpgaLogic,
                Channel::Current,
                SimTime::from_ms(40),
                1_000.0,
                50,
            )
            .unwrap();
        assert_eq!(t.len(), 50);
        assert_eq!(t.period, SimTime::from_ms(1));
        // 40 groups x 40 mA + ~900 mA baseline: roughly 2.5 A.
        assert!((1_800.0..3_500.0).contains(&t.mean()), "{}", t.mean());
    }

    #[test]
    fn value_hold_at_high_rates() {
        let p = platform_with_virus(80);
        let s = CurrentSampler::unprivileged(&p);
        // 10 kHz against the 35 ms update interval: long runs of equal
        // values.
        let t = s
            .capture(
                PowerDomain::FpgaLogic,
                Channel::Current,
                SimTime::from_ms(40),
                10_000.0,
                200,
            )
            .unwrap();
        let distinct: std::collections::BTreeSet<i64> =
            t.samples.iter().map(|&v| v as i64).collect();
        assert!(
            distinct.len() <= 2,
            "expected held values, got {distinct:?}"
        );
    }

    #[test]
    fn all_channels_capture() {
        let p = platform_with_virus(100);
        let s = CurrentSampler::unprivileged(&p);
        let [c, v, w] = s
            .capture_all_channels(PowerDomain::FpgaLogic, SimTime::from_ms(40), 100.0, 20)
            .unwrap();
        assert_eq!(c.channel, Channel::Current);
        assert_eq!(v.channel, Channel::Voltage);
        assert_eq!(w.channel, Channel::Power);
        // Voltage in the stabilized band (mV), power consistent with I*V.
        assert!((820.0..880.0).contains(&v.mean()), "v {}", v.mean());
        let implied_w = c.mean() / 1_000.0 * v.mean() / 1_000.0; // A*V = W
        let measured_w = w.mean() / 1e6;
        assert!(
            (implied_w - measured_w).abs() / implied_w < 0.05,
            "power {measured_w} vs implied {implied_w}"
        );
    }

    #[test]
    fn invalid_parameters_rejected() {
        let p = platform_with_virus(0);
        let s = CurrentSampler::unprivileged(&p);
        assert!(matches!(
            s.capture(PowerDomain::Ddr, Channel::Current, SimTime::ZERO, 0.0, 10),
            Err(AttackError::InvalidParameter(_))
        ));
        assert!(matches!(
            s.capture(PowerDomain::Ddr, Channel::Current, SimTime::ZERO, 100.0, 0),
            Err(AttackError::InvalidParameter(_))
        ));
    }

    #[test]
    fn overlong_capture_window_rejected() {
        let p = platform_with_virus(0);
        let s = CurrentSampler::unprivileged(&p);
        // ~31.7 years per sample x 1000 samples overflows u64 nanoseconds:
        // must fail up front, not wrap the clock mid-capture.
        for start in [SimTime::ZERO, SimTime::from_nanos(u64::MAX - 1)] {
            assert!(matches!(
                s.capture(PowerDomain::Ddr, Channel::Current, start, 1e-9, 1_000),
                Err(AttackError::InvalidParameter(_))
            ));
        }
        // A huge start alone is fine when the window fits.
        assert!(s
            .capture(
                PowerDomain::Ddr,
                Channel::Current,
                SimTime::from_nanos(u64::MAX - 1_000_000_000),
                1_000.0,
                10,
            )
            .is_ok());
    }

    #[test]
    fn privilege_levels() {
        let p = platform_with_virus(0);
        assert_eq!(
            CurrentSampler::unprivileged(&p).privilege(),
            Privilege::User
        );
        assert_eq!(CurrentSampler::privileged(&p).privilege(), Privilege::Root);
    }
}
