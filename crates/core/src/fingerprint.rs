//! DPU model-fingerprinting attack (Figure 3 and Table III).
//!
//! Threat model: an encrypted DPU accelerator executes one of 39 known
//! image-recognition architectures; the attacker triggers inference and
//! concurrently samples hwmon traces, then classifies which architecture
//! ran. The attack has an **offline** phase (collect labelled traces on an
//! identical board, train one random forest per sensor channel) and an
//! **online** phase (capture one trace of the black-box accelerator and
//! classify it).
//!
//! Expected Table III shape: the FPGA *current* channel is the strongest
//! (paper: 99.7% top-1 over 39 classes, 2.56% chance), power is close
//! behind, DRAM and full-power-CPU currents are strong, low-power-CPU
//! current is moderate, and FPGA *voltage* is barely above chance.

use dnn_models::ModelArch;
use rforest::{cross_validate_with, CvReport, Dataset, ForestConfig, RandomForest};
use sim_rt::pool::Pool;
use trace_stats::features::feature_vector;
use zynq_soc::{PowerDomain, SimTime};

use dpu::DpuConfig;

use crate::{AttackError, Channel, CurrentSampler, Platform, Result, Trace};

/// One sensor/channel combination — a row of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SensorChannel {
    /// Monitored power domain.
    pub domain: PowerDomain,
    /// Measurement channel.
    pub channel: Channel,
}

impl std::fmt::Display for SensorChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.channel, self.domain)
    }
}

/// The six rows of Table III, in the paper's order.
pub const TABLE3_CHANNELS: [SensorChannel; 6] = [
    SensorChannel {
        domain: PowerDomain::FullPowerCpu,
        channel: Channel::Current,
    },
    SensorChannel {
        domain: PowerDomain::LowPowerCpu,
        channel: Channel::Current,
    },
    SensorChannel {
        domain: PowerDomain::Ddr,
        channel: Channel::Current,
    },
    SensorChannel {
        domain: PowerDomain::FpgaLogic,
        channel: Channel::Current,
    },
    SensorChannel {
        domain: PowerDomain::FpgaLogic,
        channel: Channel::Voltage,
    },
    SensorChannel {
        domain: PowerDomain::FpgaLogic,
        channel: Channel::Power,
    },
];

/// Parameters of the fingerprinting experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct FingerprintConfig {
    /// Labelled traces collected per model in the offline phase.
    pub traces_per_model: usize,
    /// Capture length in seconds (paper: 5 s full-length).
    pub capture_seconds: f64,
    /// Fixed feature length traces are resampled to.
    pub resample_len: usize,
    /// Classifier configuration (paper: 100 trees, depth 32).
    pub forest: ForestConfig,
    /// Cross-validation folds (paper: 10).
    pub folds: usize,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for FingerprintConfig {
    fn default() -> Self {
        FingerprintConfig {
            traces_per_model: 15,
            capture_seconds: 5.0,
            resample_len: 96,
            forest: ForestConfig::default(),
            folds: 10,
            seed: 7,
        }
    }
}

impl FingerprintConfig {
    /// A reduced configuration for fast tests.
    pub fn quick() -> Self {
        FingerprintConfig {
            traces_per_model: 6,
            capture_seconds: 2.0,
            resample_len: 32,
            forest: ForestConfig {
                n_trees: 25,
                ..ForestConfig::default()
            },
            folds: 3,
            seed: 7,
        }
    }

    /// Checks the experiment parameters before any capture starts.
    ///
    /// # Errors
    ///
    /// [`AttackError::InvalidParameter`] for zero trace counts, a
    /// non-positive/non-finite capture length, a zero resample length, or
    /// fewer than two cross-validation folds.
    pub fn validate(&self) -> Result<()> {
        if self.traces_per_model == 0 {
            return Err(AttackError::InvalidParameter(
                "traces_per_model must be non-zero".into(),
            ));
        }
        if !self.capture_seconds.is_finite() || self.capture_seconds <= 0.0 {
            return Err(AttackError::InvalidParameter(format!(
                "capture length {} s is out of range",
                self.capture_seconds
            )));
        }
        if self.resample_len == 0 {
            return Err(AttackError::InvalidParameter(
                "resample_len must be non-zero".into(),
            ));
        }
        if self.folds < 2 {
            return Err(AttackError::InvalidParameter(
                "cross-validation needs at least two folds".into(),
            ));
        }
        Ok(())
    }
}

/// One labelled capture: all six Table III channels recorded while a known
/// model ran for the capture window.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelCapture {
    /// Index into the model list used for collection.
    pub label: usize,
    /// Model name.
    pub model_name: String,
    /// One trace per [`TABLE3_CHANNELS`] entry, same order.
    pub traces: Vec<Trace>,
}

/// Collects the offline trace corpus: for each model, `traces_per_model`
/// runs on fresh platform instances (fresh noise seeds model run-to-run
/// variation), sampling all six channels at the sensor's natural 35 ms
/// update cadence. Captures run on the process-wide thread pool.
///
/// # Errors
///
/// Propagates platform deployment and capture errors.
pub fn collect_corpus(
    models: &[&ModelArch],
    config: &FingerprintConfig,
) -> Result<Vec<ModelCapture>> {
    collect_corpus_with(models, config, Pool::global())
}

/// [`collect_corpus`] with captures spread across `pool`.
///
/// Each `(model, repetition)` capture derives its platform seed purely
/// from the campaign seed and its own indices, so the corpus is
/// byte-identical at any thread count.
///
/// # Errors
///
/// Propagates platform deployment and capture errors.
pub fn collect_corpus_with(
    models: &[&ModelArch],
    config: &FingerprintConfig,
    pool: &Pool,
) -> Result<Vec<ModelCapture>> {
    collect_corpus_hardened(models, config, pool, crate::defend::UNDEFENDED)
}

/// [`collect_corpus_with`] against defended platforms: `harden` runs on
/// each fresh per-capture platform after the victim model loads and
/// before the attacker samples.
///
/// # Errors
///
/// As [`collect_corpus_with`], plus whatever `harden` returns.
pub fn collect_corpus_hardened(
    models: &[&ModelArch],
    config: &FingerprintConfig,
    pool: &Pool,
    harden: crate::defend::Hardener<'_>,
) -> Result<Vec<ModelCapture>> {
    if models.is_empty() {
        return Err(AttackError::InvalidParameter("no victim models".into()));
    }
    config.validate()?;
    let rate_hz = 1_000.0 / 35.0;
    let count = (config.capture_seconds * rate_hz).ceil() as usize;
    let jobs: Vec<(usize, usize)> = (0..models.len())
        .flat_map(|label| (0..config.traces_per_model).map(move |rep| (label, rep)))
        .collect();
    pool.par_map(&jobs, |_, &(label, rep)| -> Result<ModelCapture> {
        let model = models[label];
        let seed = config
            .seed
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add((label * 1_000 + rep) as u64);
        let mut platform = Platform::zcu102(seed);
        let dpu = platform.deploy_dpu(DpuConfig::default())?;
        dpu.load_model(model);
        harden(&mut platform)?;
        let sampler = CurrentSampler::unprivileged(&platform);
        // The attacker's capture starts at an arbitrary phase of the
        // victim's inference loop.
        let start = SimTime::from_ms(40 + (zynq_soc::hash01(seed, 9, 0) * 400.0) as u64);
        let traces = TABLE3_CHANNELS
            .iter()
            .map(|sc| sampler.capture(sc.domain, sc.channel, start, rate_hz, count))
            .collect::<Result<Vec<Trace>>>()?;
        Ok(ModelCapture {
            label,
            model_name: model.name.clone(),
            traces,
        })
    })
    .into_iter()
    .collect()
}

/// Builds the classification dataset for one channel and capture duration
/// from a collected corpus.
///
/// # Errors
///
/// Returns [`AttackError::InvalidParameter`] if the channel is not one of
/// [`TABLE3_CHANNELS`], and propagates dataset/feature errors.
pub fn build_dataset(
    corpus: &[ModelCapture],
    channel: SensorChannel,
    duration_s: f64,
    resample_len: usize,
) -> Result<Dataset> {
    let idx = TABLE3_CHANNELS
        .iter()
        .position(|&sc| sc == channel)
        .ok_or_else(|| AttackError::InvalidParameter(format!("unknown channel {channel}")))?;
    let mut features = Vec::with_capacity(corpus.len());
    let mut labels = Vec::with_capacity(corpus.len());
    for capture in corpus {
        let trace = &capture.traces[idx];
        let prefix = trace.prefix_seconds(duration_s);
        features.push(feature_vector(prefix, resample_len)?);
        labels.push(capture.label);
    }
    Dataset::new(features, labels).map_err(|e| AttackError::InvalidParameter(e.to_string()))
}

/// Builds a *fused* dataset concatenating the feature vectors of several
/// channels per capture — the attacker reads all four sensors anyway, so
/// combining them is free and (like any view fusion) can only add
/// information. This extends Table III with an "all sensors" row.
///
/// # Errors
///
/// Returns [`AttackError::InvalidParameter`] for an empty channel list or
/// unknown channels; propagates dataset/feature errors.
pub fn build_fused_dataset(
    corpus: &[ModelCapture],
    channels: &[SensorChannel],
    duration_s: f64,
    resample_len: usize,
) -> Result<Dataset> {
    if channels.is_empty() {
        return Err(AttackError::InvalidParameter("no channels to fuse".into()));
    }
    let indices: Vec<usize> = channels
        .iter()
        .map(|sc| {
            TABLE3_CHANNELS
                .iter()
                .position(|&c| c == *sc)
                .ok_or_else(|| AttackError::InvalidParameter(format!("unknown channel {sc}")))
        })
        .collect::<Result<_>>()?;
    let mut features = Vec::with_capacity(corpus.len());
    let mut labels = Vec::with_capacity(corpus.len());
    for capture in corpus {
        let mut row = Vec::new();
        for &idx in &indices {
            let trace = &capture.traces[idx];
            let prefix = trace.prefix_seconds(duration_s);
            row.extend(feature_vector(prefix, resample_len)?);
        }
        features.push(row);
        labels.push(capture.label);
    }
    Dataset::new(features, labels).map_err(|e| AttackError::InvalidParameter(e.to_string()))
}

/// One cell of the Table III accuracy grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyCell {
    /// Capture duration in seconds.
    pub duration_s: f64,
    /// Cross-validated top-1 accuracy.
    pub top1: f64,
    /// Cross-validated top-5 accuracy.
    pub top5: f64,
}

/// The full Table III grid: per channel, accuracy at each duration.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyGrid {
    /// Rows in [`TABLE3_CHANNELS`] order.
    pub rows: Vec<(SensorChannel, Vec<AccuracyCell>)>,
    /// Number of classes (for the chance baseline `1/n`).
    pub n_classes: usize,
}

impl AccuracyGrid {
    /// The random-guess baseline (paper: 0.0256 for 39 classes).
    pub fn chance(&self) -> f64 {
        1.0 / self.n_classes as f64
    }

    /// Accuracy cell for a channel/duration, if present.
    pub fn cell(&self, channel: SensorChannel, duration_s: f64) -> Option<AccuracyCell> {
        self.rows
            .iter()
            .find(|(sc, _)| *sc == channel)
            .and_then(|(_, cells)| {
                cells
                    .iter()
                    .find(|c| (c.duration_s - duration_s).abs() < 1e-9)
                    .copied()
            })
    }
}

/// Runs the full Table III evaluation over a corpus: for every channel and
/// every duration in `durations_s`, build the dataset and cross-validate a
/// fresh forest. Cells are evaluated on the process-wide thread pool.
///
/// # Errors
///
/// Propagates dataset construction errors.
pub fn evaluate_grid(
    corpus: &[ModelCapture],
    config: &FingerprintConfig,
    durations_s: &[f64],
) -> Result<AccuracyGrid> {
    evaluate_grid_with(corpus, config, durations_s, Pool::global())
}

/// [`evaluate_grid`] with the `channel x duration` cells spread across
/// `pool`.
///
/// Each cell trains its forests serially (the grid itself is the parallel
/// axis), and every cell is a pure function of the corpus and the campaign
/// seed, so the grid is identical at any thread count.
///
/// # Errors
///
/// Propagates dataset construction errors.
pub fn evaluate_grid_with(
    corpus: &[ModelCapture],
    config: &FingerprintConfig,
    durations_s: &[f64],
    pool: &Pool,
) -> Result<AccuracyGrid> {
    config.validate()?;
    let n_classes = corpus.iter().map(|c| c.label).max().unwrap_or(0) + 1;
    let cells_spec: Vec<(SensorChannel, f64)> = TABLE3_CHANNELS
        .iter()
        .flat_map(|&channel| durations_s.iter().map(move |&d| (channel, d)))
        .collect();
    let cells = pool.par_map(
        &cells_spec,
        |_, &(channel, duration)| -> Result<AccuracyCell> {
            let dataset = build_dataset(corpus, channel, duration, config.resample_len)?;
            let report: CvReport = cross_validate_with(
                &dataset,
                &config.forest,
                config.folds,
                config.seed,
                &Pool::serial(),
            );
            Ok(AccuracyCell {
                duration_s: duration,
                top1: report.top1,
                top5: report.top5,
            })
        },
    );
    let mut rows = Vec::with_capacity(TABLE3_CHANNELS.len());
    let mut iter = cells.into_iter();
    for &channel in &TABLE3_CHANNELS {
        let mut row = Vec::with_capacity(durations_s.len());
        for _ in durations_s {
            row.push(iter.next().expect("one cell per channel x duration")?);
        }
        rows.push((channel, row));
    }
    Ok(AccuracyGrid { rows, n_classes })
}

/// One-call fingerprinting with injected config: collects a corpus over
/// the first `n_models` zoo architectures and evaluates the Table III
/// grid at the configured capture length. This is the entry point the
/// serving layer routes `fingerprint` requests to — everything the run
/// does is a pure function of `(config, n_models)`, so identical requests
/// batch onto one computation.
///
/// # Errors
///
/// [`AttackError::InvalidParameter`] when `n_models` is zero or exceeds
/// the zoo; otherwise the [`collect_corpus_with`] /
/// [`evaluate_grid_with`] failure modes.
pub fn run_with(config: &FingerprintConfig, n_models: usize, pool: &Pool) -> Result<AccuracyGrid> {
    run_hardened(config, n_models, pool, crate::defend::UNDEFENDED)
}

/// [`run_with`] against defended platforms: every corpus capture runs
/// with `harden` applied (see [`collect_corpus_hardened`]); the offline
/// training/evaluation half is unchanged — the defense acts on the
/// sensing path, not on the classifier.
///
/// # Errors
///
/// As [`run_with`], plus whatever `harden` returns.
pub fn run_hardened(
    config: &FingerprintConfig,
    n_models: usize,
    pool: &Pool,
    harden: crate::defend::Hardener<'_>,
) -> Result<AccuracyGrid> {
    let zoo = dnn_models::zoo();
    if n_models == 0 || n_models > zoo.len() {
        return Err(AttackError::InvalidParameter(format!(
            "n_models must be in 1..={}, got {n_models}",
            zoo.len()
        )));
    }
    let victims: Vec<&ModelArch> = zoo.iter().take(n_models).collect();
    let corpus = collect_corpus_hardened(&victims, config, pool, harden)?;
    evaluate_grid_with(&corpus, config, &[config.capture_seconds], pool)
}

/// The online attack object: a trained classifier for one channel.
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    forest: RandomForest,
    model_names: Vec<String>,
    channel: SensorChannel,
    duration_s: f64,
    resample_len: usize,
}

impl Fingerprinter {
    /// Trains the online classifier on a corpus (the offline phase).
    ///
    /// # Errors
    ///
    /// Propagates dataset construction errors.
    pub fn train(
        corpus: &[ModelCapture],
        channel: SensorChannel,
        config: &FingerprintConfig,
    ) -> Result<Self> {
        let dataset = build_dataset(corpus, channel, config.capture_seconds, config.resample_len)?;
        let forest = RandomForest::fit(&dataset, &config.forest);
        let mut model_names = vec![String::new(); dataset.n_classes()];
        for capture in corpus {
            model_names[capture.label] = capture.model_name.clone();
        }
        Ok(Fingerprinter {
            forest,
            model_names,
            channel,
            duration_s: config.capture_seconds,
            resample_len: config.resample_len,
        })
    }

    /// The channel this classifier consumes.
    pub fn channel(&self) -> SensorChannel {
        self.channel
    }

    /// Classifies one online capture; returns the predicted model name.
    ///
    /// # Errors
    ///
    /// Propagates feature extraction errors (e.g. an empty trace).
    pub fn identify(&self, trace: &Trace) -> Result<&str> {
        let prefix = trace.prefix_seconds(self.duration_s);
        let features = feature_vector(prefix, self.resample_len)?;
        let label = self.forest.predict(&features);
        Ok(self.model_names[label].as_str())
    }

    /// Top-`k` candidate model names, most likely first.
    ///
    /// # Errors
    ///
    /// Propagates feature extraction errors.
    pub fn identify_top_k(&self, trace: &Trace, k: usize) -> Result<Vec<&str>> {
        let prefix = trace.prefix_seconds(self.duration_s);
        let features = feature_vector(prefix, self.resample_len)?;
        Ok(self
            .forest
            .top_k(&features, k)
            .into_iter()
            .map(|l| self.model_names[l].as_str())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::zoo;

    fn small_corpus() -> (Vec<ModelCapture>, FingerprintConfig) {
        let models = zoo();
        let picks: Vec<&ModelArch> = ["mobilenet-v1", "resnet-50", "vgg-19", "squeezenet"]
            .iter()
            .map(|n| models.iter().find(|m| &m.name == n).unwrap())
            .collect();
        let config = FingerprintConfig::quick();
        let corpus = collect_corpus(&picks, &config).unwrap();
        (corpus, config)
    }

    #[test]
    fn corpus_collection_shape() {
        let (corpus, config) = small_corpus();
        assert_eq!(corpus.len(), 4 * config.traces_per_model);
        for c in &corpus {
            assert_eq!(c.traces.len(), 6);
            for t in &c.traces {
                assert!(t.len() >= 50, "2 s at 35 ms = ~57 samples");
            }
        }
    }

    #[test]
    fn fpga_current_separates_models() {
        let (corpus, config) = small_corpus();
        let grid = evaluate_grid(&corpus, &config, &[2.0]).unwrap();
        let fpga_current = grid
            .cell(
                SensorChannel {
                    domain: PowerDomain::FpgaLogic,
                    channel: Channel::Current,
                },
                2.0,
            )
            .unwrap();
        assert!(
            fpga_current.top1 > 0.8,
            "FPGA current top-1 {} too low",
            fpga_current.top1
        );
        assert!(fpga_current.top5 >= fpga_current.top1);
    }

    #[test]
    fn voltage_channel_is_much_weaker_than_current() {
        let (corpus, config) = small_corpus();
        let grid = evaluate_grid(&corpus, &config, &[2.0]).unwrap();
        let current = grid
            .cell(
                SensorChannel {
                    domain: PowerDomain::FpgaLogic,
                    channel: Channel::Current,
                },
                2.0,
            )
            .unwrap();
        let voltage = grid
            .cell(
                SensorChannel {
                    domain: PowerDomain::FpgaLogic,
                    channel: Channel::Voltage,
                },
                2.0,
            )
            .unwrap();
        assert!(
            voltage.top1 < current.top1,
            "voltage {} must underperform current {}",
            voltage.top1,
            current.top1
        );
    }

    #[test]
    fn online_identification_works() {
        let (corpus, config) = small_corpus();
        let channel = SensorChannel {
            domain: PowerDomain::FpgaLogic,
            channel: Channel::Current,
        };
        let fp = Fingerprinter::train(&corpus, channel, &config).unwrap();
        assert_eq!(fp.channel(), channel);

        // Fresh online capture of a known victim.
        let models = zoo();
        let victim = models.iter().find(|m| m.name == "vgg-19").unwrap();
        let mut platform = Platform::zcu102(0xDEAD);
        let dpu = platform.deploy_dpu(DpuConfig::default()).unwrap();
        dpu.load_model(victim);
        let sampler = CurrentSampler::unprivileged(&platform);
        let trace = sampler
            .capture(
                PowerDomain::FpgaLogic,
                Channel::Current,
                SimTime::from_ms(40),
                1_000.0 / 35.0,
                57,
            )
            .unwrap();
        assert_eq!(fp.identify(&trace).unwrap(), "vgg-19");
        let top2 = fp.identify_top_k(&trace, 2).unwrap();
        assert_eq!(top2[0], "vgg-19");
        assert_eq!(top2.len(), 2);
    }

    #[test]
    fn fused_channels_match_or_beat_single_channel() {
        let (corpus, config) = small_corpus();
        let all_currents: Vec<SensorChannel> = TABLE3_CHANNELS
            .iter()
            .copied()
            .filter(|sc| sc.channel == Channel::Current)
            .collect();
        let fused = build_fused_dataset(&corpus, &all_currents, 2.0, config.resample_len).unwrap();
        let single = build_dataset(
            &corpus,
            SensorChannel {
                domain: PowerDomain::FpgaLogic,
                channel: Channel::Current,
            },
            2.0,
            config.resample_len,
        )
        .unwrap();
        assert_eq!(fused.n_features(), 4 * single.n_features());
        let fused_report = rforest::cross_validate(&fused, &config.forest, config.folds, 1);
        let single_report = rforest::cross_validate(&single, &config.forest, config.folds, 1);
        assert!(
            fused_report.top1 >= single_report.top1 - 0.05,
            "fusion {} should not trail single-channel {}",
            fused_report.top1,
            single_report.top1
        );
    }

    #[test]
    fn fused_dataset_rejects_bad_channels() {
        let (corpus, config) = small_corpus();
        assert!(build_fused_dataset(&corpus, &[], 1.0, config.resample_len).is_err());
        let bogus = SensorChannel {
            domain: PowerDomain::Ddr,
            channel: Channel::Voltage,
        };
        assert!(build_fused_dataset(&corpus, &[bogus], 1.0, config.resample_len).is_err());
    }

    #[test]
    fn empty_model_list_rejected() {
        let config = FingerprintConfig::quick();
        assert!(matches!(
            collect_corpus(&[], &config),
            Err(AttackError::InvalidParameter(_))
        ));
    }

    #[test]
    fn unknown_channel_rejected() {
        let (corpus, _) = small_corpus();
        let bogus = SensorChannel {
            domain: PowerDomain::Ddr,
            channel: Channel::Voltage,
        };
        assert!(build_dataset(&corpus, bogus, 1.0, 16).is_err());
    }

    #[test]
    fn grid_chance_baseline() {
        let (corpus, config) = small_corpus();
        let grid = evaluate_grid(&corpus, &config, &[1.0]).unwrap();
        assert_eq!(grid.n_classes, 4);
        assert!((grid.chance() - 0.25).abs() < 1e-12);
        assert_eq!(grid.rows.len(), 6);
    }

    #[test]
    fn sensor_channel_display() {
        let sc = SensorChannel {
            domain: PowerDomain::FpgaLogic,
            channel: Channel::Current,
        };
        assert_eq!(sc.to_string(), "Current (FPGA)");
    }
}
