//! Characterization of the current side channel (Figure 2).
//!
//! The experiment: deploy 160 k power-virus instances in 160 groups,
//! activate 0..=160 of them (161 distinct victim activity levels), and at
//! each level collect hwmon samples of FPGA current, voltage and power
//! plus the co-resident RO baseline's counter. Per-level means are then
//! correlated against the activity level.
//!
//! Expected shape (paper values): current and power reach Pearson r =
//! 0.999, voltage r = 0.958 with a near-zero slope, RO r = -0.996, and
//! the current channel's relative variation is ~261x the RO's.

use sim_rt::json;
use sim_rt::pool::Pool;
use sim_rt::ser::Value;
use sim_store::{Checkpoint, Digest, Store};
use trace_stats::{pearson, LinearFit, Summary};
use zynq_soc::{PowerDomain, SimTime};

use crate::{AttackError, Channel, CurrentSampler, Platform, Result};

/// Parameters of the characterization sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizeConfig {
    /// Activation levels to visit (default: 0..=160, the paper's 161).
    pub levels: Vec<u32>,
    /// hwmon samples collected per level (paper: 10 000).
    pub samples_per_level: usize,
    /// Attacker sampling rate in Hz.
    pub sample_rate_hz: f64,
    /// Settling time after switching levels.
    pub settle: SimTime,
}

impl Default for CharacterizeConfig {
    fn default() -> Self {
        CharacterizeConfig {
            levels: (0..=160).collect(),
            samples_per_level: 10_000,
            sample_rate_hz: 1_000.0,
            settle: SimTime::from_ms(70),
        }
    }
}

impl CharacterizeConfig {
    /// A reduced sweep for fast tests: every 16th level, 300 samples.
    pub fn quick() -> Self {
        CharacterizeConfig {
            levels: (0..=160).step_by(16).collect(),
            samples_per_level: 300,
            ..CharacterizeConfig::default()
        }
    }

    /// Checks the sweep parameters before any capture starts.
    ///
    /// # Errors
    ///
    /// [`AttackError::InvalidParameter`] for fewer than two levels, a zero
    /// sample count, a non-positive/non-finite sample rate, or a
    /// zero-duration settle phase.
    pub fn validate(&self) -> Result<()> {
        if self.levels.len() < 2 {
            return Err(AttackError::InvalidParameter(
                "characterization needs at least two levels".into(),
            ));
        }
        if self.samples_per_level == 0 {
            return Err(AttackError::InvalidParameter(
                "samples_per_level must be non-zero".into(),
            ));
        }
        if !self.sample_rate_hz.is_finite() || self.sample_rate_hz <= 0.0 {
            return Err(AttackError::InvalidParameter(format!(
                "sample rate {} Hz is out of range",
                self.sample_rate_hz
            )));
        }
        if self.settle.as_nanos() == 0 {
            return Err(AttackError::InvalidParameter(
                "settle phase must have a non-zero duration".into(),
            ));
        }
        Ok(())
    }

    /// Content digest of the sweep (parameterized by the platform seed the
    /// caller's factory uses), addressing its checkpoint file.
    pub fn sweep_key(&self, seed: u64) -> Digest {
        let content = Value::Object(vec![
            (
                "levels".into(),
                Value::Array(
                    self.levels
                        .iter()
                        .map(|&l| Value::from(u64::from(l)))
                        .collect(),
                ),
            ),
            ("sample_rate_hz".into(), Value::from(self.sample_rate_hz)),
            (
                "samples_per_level".into(),
                Value::from(self.samples_per_level as u64),
            ),
            ("settle_ns".into(), Value::from(self.settle.as_nanos())),
        ]);
        Store::key("characterize-sweep", seed, &content)
    }
}

/// Per-level measurement summary.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelRow {
    /// Number of active power-virus groups.
    pub active_groups: u32,
    /// FPGA current channel (mA).
    pub current_ma: Summary,
    /// FPGA voltage channel (mV).
    pub voltage_mv: Summary,
    /// FPGA power channel (µW).
    pub power_uw: Summary,
    /// RO baseline mean counter value, if an RO bank is deployed.
    pub ro_count: Option<Summary>,
    /// TDC baseline thermometer code, if a TDC is deployed.
    pub tdc_code: Option<Summary>,
}

/// Checkpoint codec: a [`Summary`] as a stable JSON value (all fields
/// finite, so shortest-roundtrip floats survive bit-exactly).
fn summary_to_value(s: &Summary) -> Value {
    Value::Object(vec![
        ("count".into(), Value::from(s.count as u64)),
        ("max".into(), Value::from(s.max)),
        ("mean".into(), Value::from(s.mean)),
        ("median".into(), Value::from(s.median)),
        ("min".into(), Value::from(s.min)),
        ("std_dev".into(), Value::from(s.std_dev)),
        ("variance".into(), Value::from(s.variance)),
    ])
}

fn summary_from_value(v: &Value) -> Option<Summary> {
    Some(Summary {
        count: usize::try_from(v.get("count")?.as_u64()?).ok()?,
        mean: v.get("mean")?.as_f64()?,
        variance: v.get("variance")?.as_f64()?,
        std_dev: v.get("std_dev")?.as_f64()?,
        min: v.get("min")?.as_f64()?,
        max: v.get("max")?.as_f64()?,
        median: v.get("median")?.as_f64()?,
    })
}

impl LevelRow {
    /// Checkpoint codec: the row as a stable JSON value. Optional baseline
    /// columns encode as `null` so a resume distinguishes "not deployed"
    /// from "absent field".
    pub fn to_value(&self) -> Value {
        let opt = |s: &Option<Summary>| match s {
            Some(s) => summary_to_value(s),
            None => Value::Null,
        };
        Value::Object(vec![
            (
                "active_groups".into(),
                Value::from(u64::from(self.active_groups)),
            ),
            ("current_ma".into(), summary_to_value(&self.current_ma)),
            ("power_uw".into(), summary_to_value(&self.power_uw)),
            ("ro_count".into(), opt(&self.ro_count)),
            ("tdc_code".into(), opt(&self.tdc_code)),
            ("voltage_mv".into(), summary_to_value(&self.voltage_mv)),
        ])
    }

    /// Decodes a checkpointed row; `None` for any schema mismatch (the
    /// caller recomputes the level).
    pub fn from_json(line: &str) -> Option<LevelRow> {
        let v = json::parse(line).ok()?;
        let opt = |name: &str| -> Option<Option<Summary>> {
            match v.get(name)? {
                Value::Null => Some(None),
                s => Some(Some(summary_from_value(s)?)),
            }
        };
        Some(LevelRow {
            active_groups: u32::try_from(v.get("active_groups")?.as_u64()?).ok()?,
            current_ma: summary_from_value(v.get("current_ma")?)?,
            voltage_mv: summary_from_value(v.get("voltage_mv")?)?,
            power_uw: summary_from_value(v.get("power_uw")?)?,
            ro_count: opt("ro_count")?,
            tdc_code: opt("tdc_code")?,
        })
    }
}

/// Result of the Figure 2 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizationReport {
    /// One row per activity level.
    pub rows: Vec<LevelRow>,
    /// Pearson r of per-level mean current vs. level.
    pub pearson_current: f64,
    /// Pearson r of per-level mean voltage vs. level.
    pub pearson_voltage: f64,
    /// Pearson r of per-level mean power vs. level.
    pub pearson_power: f64,
    /// Pearson r of per-level mean RO count vs. level (negative), if the
    /// RO bank was deployed.
    pub pearson_ro: Option<f64>,
    /// Pearson r of per-level mean TDC code vs. level (negative), if a
    /// TDC is deployed.
    pub pearson_tdc: Option<f64>,
    /// Linear fit of mean current (mA) vs. level: the slope is the paper's
    /// "~40 LSBs per setting" at the 1 mA hwmon resolution.
    pub fit_current: LinearFit,
    /// Linear fit of mean voltage (mV) vs. level; slope/1.25 is the LSB
    /// change per setting (paper: ~0.006).
    pub fit_voltage: LinearFit,
    /// Linear fit of mean power (mW) vs. level; slope/25 is the LSB change
    /// per setting (1-2 LSBs between consecutive settings).
    pub fit_power_mw: LinearFit,
    /// Relative variation of the current channel divided by the RO
    /// baseline's — the paper's headline 261x factor.
    pub variation_ratio_vs_ro: Option<f64>,
    /// Relative variation of the current channel divided by the TDC
    /// baseline's — same verdict for the post-RO-ban sensor generation.
    pub variation_ratio_vs_tdc: Option<f64>,
}

impl CharacterizationReport {
    /// Slope of the voltage channel in bus-ADC LSBs per activation step.
    pub fn voltage_lsb_per_step(&self) -> f64 {
        self.fit_voltage.slope / 1.25
    }

    /// Slope of the power channel in power-register LSBs per step
    /// (25 mW LSB at the FPGA sensor's calibration).
    pub fn power_lsb_per_step(&self) -> f64 {
        self.fit_power_mw.slope / 25.0
    }
}

/// Runs the characterization sweep on a platform with a deployed virus
/// array (and optionally a deployed RO bank for the baseline columns).
///
/// # Errors
///
/// * [`AttackError::NotDeployed`] if no virus array is deployed.
/// * [`AttackError::Hwmon`] / [`AttackError::Stats`] on capture or
///   analysis failures.
pub fn run(platform: &Platform, config: &CharacterizeConfig) -> Result<CharacterizationReport> {
    let _trace = obs::trace::span("core.characterize", "sweep");
    let virus = platform
        .virus()
        .ok_or(AttackError::NotDeployed("power-virus array"))?;
    config.validate()?;
    let sampler = CurrentSampler::unprivileged(platform);
    let period = SimTime::from_secs_f64(1.0 / config.sample_rate_hz);
    let level_span = SimTime::from_nanos(period.as_nanos() * config.samples_per_level as u64);

    let mut cursor = SimTime::from_ms(40);
    let mut rows = Vec::with_capacity(config.levels.len());

    for &level in &config.levels {
        virus
            .activate_groups(level)
            .map_err(|e| AttackError::InvalidParameter(e.to_string()))?;
        cursor += config.settle;
        rows.push(measure_row(platform, &sampler, config, level, cursor)?);
        cursor += level_span;
    }

    analyze(rows)
}

/// Runs the characterization sweep with one fresh platform per activity
/// level, spreading levels across `pool`.
///
/// The serial [`run`] walks one platform through the levels with a moving
/// time cursor; here every level instead gets its own platform from
/// `factory(level)` and is measured right after settling. Keep the factory
/// a pure function of the level (e.g. `Platform::zcu102(seed ^ level)` with
/// virus/RO deployment) and the report is identical at any thread count.
///
/// # Errors
///
/// Same failure modes as [`run`], plus any error from `factory`.
pub fn run_parallel(
    factory: impl Fn(u32) -> Result<Platform> + Sync,
    config: &CharacterizeConfig,
    pool: &Pool,
) -> Result<CharacterizationReport> {
    run_parallel_checkpointed(factory, config, pool, &Checkpoint::in_memory())
}

/// [`run_parallel`] persisting every finished level row to `ckpt` as it
/// lands, indexed by the level's position in `config.levels`. A sweep
/// interrupted mid-flight resumes by rerunning with the same checkpoint:
/// persisted rows are decoded instead of re-measured, and the resumed
/// report is byte-identical to an uninterrupted run.
///
/// # Errors
///
/// Same failure modes as [`run_parallel`]. A checkpoint record that fails
/// to decode is re-measured, not an error.
pub fn run_parallel_checkpointed(
    factory: impl Fn(u32) -> Result<Platform> + Sync,
    config: &CharacterizeConfig,
    pool: &Pool,
    ckpt: &Checkpoint,
) -> Result<CharacterizationReport> {
    let _trace = obs::trace::span("core.characterize", "sweep");
    config.validate()?;
    let rows = pool
        .par_map(&config.levels, |i, &level| -> Result<LevelRow> {
            if let Some(row) = ckpt.get(i as u64).as_deref().and_then(LevelRow::from_json) {
                return Ok(row);
            }
            let platform = factory(level)?;
            let virus = platform
                .virus()
                .ok_or(AttackError::NotDeployed("power-virus array"))?;
            virus
                .activate_groups(level)
                .map_err(|e| AttackError::InvalidParameter(e.to_string()))?;
            let sampler = CurrentSampler::unprivileged(&platform);
            let cursor = SimTime::from_ms(40) + config.settle;
            let row = measure_row(&platform, &sampler, config, level, cursor)?;
            ckpt.put(i as u64, &row.to_value().to_json());
            Ok(row)
        })
        .into_iter()
        .collect::<Result<Vec<LevelRow>>>()?;
    analyze(rows)
}

/// Captures all channels (plus any deployed fabric baselines) for one
/// activity level at time `cursor`.
fn measure_row(
    platform: &Platform,
    sampler: &CurrentSampler<'_>,
    config: &CharacterizeConfig,
    level: u32,
    cursor: SimTime,
) -> Result<LevelRow> {
    let period = SimTime::from_secs_f64(1.0 / config.sample_rate_hz);
    let [current, voltage, power] = sampler.capture_all_channels(
        PowerDomain::FpgaLogic,
        cursor,
        config.sample_rate_hz,
        config.samples_per_level,
    )?;
    let ro_count = if platform.sample_ro(cursor).is_ok() {
        let counts: Vec<f64> = (0..config.samples_per_level)
            .map(|k| {
                let t = cursor + SimTime::from_nanos(period.as_nanos() * k as u64);
                platform.sample_ro(t)
            })
            .collect::<Result<_>>()?;
        Some(Summary::from_samples(&counts)?)
    } else {
        None
    };
    let tdc_code = if platform.sample_tdc(cursor).is_ok() {
        let codes: Vec<f64> = (0..config.samples_per_level)
            .map(|k| {
                let t = cursor + SimTime::from_nanos(period.as_nanos() * k as u64);
                platform.sample_tdc(t).map(|c| c as f64)
            })
            .collect::<Result<_>>()?;
        Some(Summary::from_samples(&codes)?)
    } else {
        None
    };
    Ok(LevelRow {
        active_groups: level,
        current_ma: Summary::from_samples(&current.samples)?,
        voltage_mv: Summary::from_samples(&voltage.samples)?,
        power_uw: Summary::from_samples(&power.samples)?,
        ro_count,
        tdc_code,
    })
}

/// Correlates per-level means against the activity level (Figure 2).
fn analyze(rows: Vec<LevelRow>) -> Result<CharacterizationReport> {
    let levels_f: Vec<f64> = rows.iter().map(|r| r.active_groups as f64).collect();
    let mean_i: Vec<f64> = rows.iter().map(|r| r.current_ma.mean).collect();
    let mean_v: Vec<f64> = rows.iter().map(|r| r.voltage_mv.mean).collect();
    let mean_p_mw: Vec<f64> = rows.iter().map(|r| r.power_uw.mean / 1_000.0).collect();
    let mean_ro: Option<Vec<f64>> = rows
        .iter()
        .map(|r| r.ro_count.as_ref().map(|s| s.mean))
        .collect();
    let mean_tdc: Option<Vec<f64>> = rows
        .iter()
        .map(|r| r.tdc_code.as_ref().map(|s| s.mean))
        .collect();

    let pearson_ro = match &mean_ro {
        Some(ro) => Some(pearson(&levels_f, ro)?),
        None => None,
    };
    let pearson_tdc = match &mean_tdc {
        Some(tdc) => Some(pearson(&levels_f, tdc)?),
        None => None,
    };
    let i_summary = Summary::from_samples(&mean_i)?;
    let variation_ratio_vs_ro = match &mean_ro {
        Some(ro) => {
            let ro_summary = Summary::from_samples(ro)?;
            Some(i_summary.relative_range()? / ro_summary.relative_range()?)
        }
        None => None,
    };
    let variation_ratio_vs_tdc = match &mean_tdc {
        Some(tdc) => {
            let tdc_summary = Summary::from_samples(tdc)?;
            Some(i_summary.relative_range()? / tdc_summary.relative_range()?)
        }
        None => None,
    };

    Ok(CharacterizationReport {
        pearson_current: pearson(&levels_f, &mean_i)?,
        pearson_voltage: pearson(&levels_f, &mean_v)?,
        pearson_power: pearson(&levels_f, &mean_p_mw)?,
        pearson_ro,
        pearson_tdc,
        fit_current: LinearFit::fit(&levels_f, &mean_i)?,
        fit_voltage: LinearFit::fit(&levels_f, &mean_v)?,
        fit_power_mw: LinearFit::fit(&levels_f, &mean_p_mw)?,
        variation_ratio_vs_ro,
        variation_ratio_vs_tdc,
        rows,
    })
}

/// The quickstart sweep: six coarse activity levels measured on an
/// already-deployed platform — a cheap "is this board leaking" probe with
/// one injected knob. Used by the `quickstart` example flow and as the
/// serving layer's lightest campaign verb.
///
/// # Errors
///
/// Same failure modes as [`run`]; `samples_per_level` must be non-zero.
pub fn quicklook(platform: &Platform, samples_per_level: usize) -> Result<CharacterizationReport> {
    let _trace = obs::trace::span("core.characterize", "quicklook");
    run(
        platform,
        &CharacterizeConfig {
            levels: vec![0, 20, 40, 80, 120, 160],
            samples_per_level,
            ..CharacterizeConfig::quick()
        },
    )
}

/// Sensitivity comparison across domains: which sensors see a victim that
/// only stresses the FPGA rail. Used by examples and the ablation bench.
///
/// # Errors
///
/// Propagates capture errors from the sampler.
pub fn domain_sensitivity(
    platform: &Platform,
    start: SimTime,
    samples: usize,
) -> Result<Vec<(PowerDomain, Summary)>> {
    let sampler = CurrentSampler::unprivileged(platform);
    PowerDomain::ALL
        .iter()
        .map(|&d| {
            let trace = sampler.capture(d, Channel::Current, start, 1_000.0, samples)?;
            Ok((d, Summary::from_samples(&trace.samples)?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_fabric::ring_oscillator::RoConfig;
    use fpga_fabric::virus::VirusConfig;

    fn ready_platform(seed: u64) -> Platform {
        let mut p = Platform::zcu102(seed);
        p.deploy_virus(VirusConfig::default()).unwrap();
        p.deploy_ro_bank(RoConfig::default()).unwrap();
        p
    }

    #[test]
    fn tdc_baseline_shares_the_ro_verdict() {
        let mut p = ready_platform(37);
        p.deploy_tdc(fpga_fabric::tdc::TdcConfig::default())
            .unwrap();
        let mut cfg = CharacterizeConfig::quick();
        cfg.levels = (0..=160).step_by(32).collect();
        cfg.samples_per_level = 400;
        let report = run(&p, &cfg).unwrap();
        // The TDC tracks load negatively (more load, more droop, fewer
        // taps), and its relative variation is as tiny as the RO's.
        assert!(
            report.pearson_tdc.unwrap() < -0.8,
            "{:?}",
            report.pearson_tdc
        );
        let ratio = report.variation_ratio_vs_tdc.unwrap();
        assert!(ratio > 50.0, "current must dwarf TDC variation ({ratio}x)");
    }

    #[test]
    fn quick_sweep_reproduces_figure_two_shape() {
        let p = ready_platform(31);
        let report = run(&p, &CharacterizeConfig::quick()).unwrap();
        assert_eq!(report.rows.len(), 11);
        // Current and power: near-perfect positive correlation.
        assert!(
            report.pearson_current > 0.995,
            "r_I = {}",
            report.pearson_current
        );
        assert!(
            report.pearson_power > 0.995,
            "r_P = {}",
            report.pearson_power
        );
        // Voltage correlates on means but with a tiny slope.
        assert!(report.pearson_voltage < -0.5, "voltage droops with load");
        assert!(report.voltage_lsb_per_step().abs() < 0.2);
        // RO: strong negative correlation, tiny relative variation.
        assert!(
            report.pearson_ro.unwrap() < -0.95,
            "r_RO = {:?}",
            report.pearson_ro
        );
        // ~40 mA per group step.
        assert!(
            (30.0..50.0).contains(&report.fit_current.slope),
            "slope {}",
            report.fit_current.slope
        );
        // Power: 1-2 LSB per step.
        assert!(
            (0.5..3.0).contains(&report.power_lsb_per_step()),
            "power LSB/step {}",
            report.power_lsb_per_step()
        );
        // The headline factor: current variation dwarfs RO variation.
        let ratio = report.variation_ratio_vs_ro.unwrap();
        assert!((100.0..500.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn sweep_without_ro_bank_omits_baseline() {
        let mut p = Platform::zcu102(32);
        p.deploy_virus(VirusConfig::default()).unwrap();
        let mut cfg = CharacterizeConfig::quick();
        cfg.levels = vec![0, 80, 160];
        cfg.samples_per_level = 100;
        let report = run(&p, &cfg).unwrap();
        assert!(report.pearson_ro.is_none());
        assert!(report.pearson_tdc.is_none());
        assert!(report.variation_ratio_vs_ro.is_none());
        assert!(report.variation_ratio_vs_tdc.is_none());
        assert!(report.rows.iter().all(|r| r.ro_count.is_none()));
    }

    #[test]
    fn parallel_sweep_is_identical_at_any_thread_count() {
        // One fixed seed: per-seed RO calibration offsets are larger than
        // the RO's (deliberately tiny) load response, so the baseline
        // columns only trend cleanly when every level shares a platform
        // build. The levels stay independent jobs either way.
        let factory = |_level: u32| Ok(ready_platform(1_000));
        let mut cfg = CharacterizeConfig::quick();
        cfg.levels = vec![0, 40, 80, 120, 160];
        cfg.samples_per_level = 120;
        let serial = run_parallel(factory, &cfg, &Pool::serial()).unwrap();
        let two = run_parallel(factory, &cfg, &Pool::new(2)).unwrap();
        let eight = run_parallel(factory, &cfg, &Pool::new(8)).unwrap();
        assert_eq!(serial, two);
        assert_eq!(serial, eight);
        // The parallel sweep still reproduces the Figure 2 shape.
        assert!(
            serial.pearson_current > 0.99,
            "r_I = {}",
            serial.pearson_current
        );
        assert!(serial.pearson_ro.unwrap() < -0.9);
    }

    #[test]
    fn parallel_sweep_requires_virus_in_factory_platforms() {
        let factory = |level: u32| Ok(Platform::zcu102(level as u64));
        let report = run_parallel(factory, &CharacterizeConfig::quick(), &Pool::serial());
        assert!(matches!(report, Err(AttackError::NotDeployed(_))));
    }

    #[test]
    fn requires_virus_deployment() {
        let p = Platform::zcu102(33);
        assert!(matches!(
            run(&p, &CharacterizeConfig::quick()),
            Err(AttackError::NotDeployed(_))
        ));
    }

    #[test]
    fn rejects_empty_levels() {
        let p = ready_platform(34);
        let cfg = CharacterizeConfig {
            levels: vec![],
            ..CharacterizeConfig::quick()
        };
        assert!(matches!(
            run(&p, &cfg),
            Err(AttackError::InvalidParameter(_))
        ));
    }

    #[test]
    fn current_does_not_start_from_zero() {
        // Static workloads of deployed-but-inactive instances (Figure 2
        // note in the paper).
        let p = ready_platform(35);
        let cfg = CharacterizeConfig {
            levels: vec![0, 160],
            samples_per_level: 200,
            ..CharacterizeConfig::quick()
        };
        let report = run(&p, &cfg).unwrap();
        assert_eq!(report.rows[0].active_groups, 0);
        assert!(report.rows[0].current_ma.mean > 500.0);
    }

    #[test]
    fn domain_sensitivity_singles_out_fpga() {
        let p = ready_platform(36);
        p.virus().unwrap().activate_groups(160).unwrap();
        let rows = domain_sensitivity(&p, SimTime::from_ms(40), 60).unwrap();
        let fpga = rows
            .iter()
            .find(|(d, _)| *d == PowerDomain::FpgaLogic)
            .unwrap()
            .1
            .mean;
        for (d, s) in &rows {
            if *d != PowerDomain::FpgaLogic {
                assert!(fpga > s.mean, "FPGA rail must dominate ({d}: {})", s.mean);
            }
        }
    }
}
