//! RSA Hamming-weight recovery attack (Figure 4).
//!
//! The victim is an RSA-1024 Square-and-Multiply circuit at 100 MHz whose
//! private exponent is sealed in the encrypted bitstream. While it
//! repeatedly encrypts, the attacker samples the FPGA current channel at
//! 1 kHz (100 000 samples in the paper). Because bit=1 iterations activate
//! both modular multipliers, the circuit's *mean* current is an affine
//! function of the key's Hamming weight.
//!
//! Expected shape: across 17 keys with weights 1, 64, 128, ..., 1024 the
//! current channel separates every group, while the power channel —
//! quantized to a 25 mW LSB — collapses them into roughly 5 groups.
//! Knowing the Hamming weight shrinks the brute-force key space and feeds
//! statistical key-recovery attacks.

use fpga_fabric::rsa::{RsaConfig, RsaKey};
use trace_stats::separability::{separability_quantized, Separability};
use trace_stats::Summary;
use zynq_soc::{PowerDomain, SimTime};

use crate::{AttackError, Channel, CurrentSampler, Platform, Result};

/// Parameters of the Hamming-weight experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct RsaAttackConfig {
    /// Key Hamming weights to profile (default: the paper's 17).
    pub hamming_weights: Vec<u32>,
    /// Samples per key (paper: 100 000).
    pub samples_per_key: usize,
    /// Attacker sampling rate in Hz (paper: 1 kHz).
    pub sample_rate_hz: f64,
    /// z-score for the separability test.
    pub z_score: f64,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for RsaAttackConfig {
    fn default() -> Self {
        RsaAttackConfig {
            hamming_weights: paper_weights(),
            samples_per_key: 100_000,
            sample_rate_hz: 1_000.0,
            z_score: 3.0,
            seed: 13,
        }
    }
}

impl RsaAttackConfig {
    /// A reduced configuration for fast tests (5 weights, 4 k samples).
    pub fn quick() -> Self {
        RsaAttackConfig {
            hamming_weights: vec![1, 256, 512, 768, 1024],
            samples_per_key: 4_000,
            ..RsaAttackConfig::default()
        }
    }

    /// Checks the experiment parameters before any capture starts.
    ///
    /// # Errors
    ///
    /// [`AttackError::InvalidParameter`] for an empty weight list, a zero
    /// sample count, a non-positive/non-finite sample rate, or a
    /// non-positive z-score.
    pub fn validate(&self) -> Result<()> {
        if self.hamming_weights.is_empty() {
            return Err(AttackError::InvalidParameter("no key weights".into()));
        }
        if self.samples_per_key == 0 {
            return Err(AttackError::InvalidParameter(
                "samples_per_key must be non-zero".into(),
            ));
        }
        if !self.sample_rate_hz.is_finite() || self.sample_rate_hz <= 0.0 {
            return Err(AttackError::InvalidParameter(format!(
                "sample rate {} Hz is out of range",
                self.sample_rate_hz
            )));
        }
        if !self.z_score.is_finite() || self.z_score <= 0.0 {
            return Err(AttackError::InvalidParameter(format!(
                "z-score {} is out of range",
                self.z_score
            )));
        }
        Ok(())
    }
}

/// The paper's 17 key weights: 1, then 64..=1024 in steps of 64.
pub fn paper_weights() -> Vec<u32> {
    std::iter::once(1).chain((1..=16).map(|i| i * 64)).collect()
}

/// Size (in bits) of the brute-force search space for a 1024-bit exponent
/// of known Hamming weight: `log2 C(1024, hw)`.
///
/// The paper notes that "knowledge of the Hamming weight can greatly
/// reduce the search space of RSA's key brute force attack"; this
/// quantifies the reduction against the unconstrained 1024 bits. For
/// example an HW-64 key leaves only ~341 bits of search space — a
/// 683-bit reduction.
///
/// # Panics
///
/// Panics if `hw > 1024`.
///
/// # Examples
///
/// ```
/// let bits = amperebleed::rsa_attack::search_space_bits(64);
/// assert!(bits < 350.0);
/// assert_eq!(amperebleed::rsa_attack::search_space_bits(0), 0.0);
/// ```
pub fn search_space_bits(hw: u32) -> f64 {
    assert!(hw <= 1024, "hamming weight exceeds 1024 bits");
    // log2 C(n, k) = sum_{i=1..k} log2((n - k + i) / i)
    let n = 1024u32;
    let k = hw.min(n - hw); // symmetry keeps the sum short
    let mut bits = 0.0;
    for i in 1..=k {
        bits += (((n - k + i) as f64) / i as f64).log2();
    }
    bits
}

/// Measured distribution for one key.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyObservation {
    /// The (secret) Hamming weight this key was constructed with.
    pub hamming_weight: u32,
    /// FPGA current channel distribution (mA).
    pub current_ma: Summary,
    /// FPGA power channel distribution (mW).
    pub power_mw: Summary,
}

/// Result of the Figure 4 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct RsaAttackReport {
    /// Per-key distributions, in the order of the configured weights.
    pub observations: Vec<KeyObservation>,
    /// How many groups the current channel distinguishes (expected: all).
    pub current_separability: Separability,
    /// How many groups the power channel distinguishes (expected: ~5).
    pub power_separability: Separability,
}

impl RsaAttackReport {
    /// Whether the current channel separates every profiled weight.
    pub fn current_separates_all(&self) -> bool {
        self.current_separability.distinguishable == self.observations.len()
    }

    /// Welch t statistics between adjacent Hamming-weight groups on the
    /// current channel — the TVLA-style confidence behind the
    /// separability verdict (|t| > 4.5 is the community's leakage
    /// threshold).
    pub fn adjacent_current_t(&self) -> Vec<f64> {
        self.observations
            .windows(2)
            .map(|w| {
                trace_stats::hypothesis::welch_t_summaries(&w[1].current_ma, &w[0].current_ma)
                    .map(|test| test.t)
                    .unwrap_or(f64::INFINITY)
            })
            .collect()
    }
}

/// Runs the Hamming-weight experiment: for each weight, a fresh platform
/// deploys an RSA circuit with a key of that weight and the unprivileged
/// attacker profiles the FPGA current and power channels.
///
/// # Errors
///
/// Propagates key construction, deployment, capture and analysis errors.
pub fn run(config: &RsaAttackConfig) -> Result<RsaAttackReport> {
    run_hardened(config, crate::defend::UNDEFENDED)
}

/// [`run`] against a defended platform: `harden` is applied to each fresh
/// per-key platform after the victim circuit deploys and before any
/// capture, modelling a countermeasure the victim (not the attacker)
/// controls.
///
/// # Errors
///
/// As [`run`], plus whatever `harden` returns.
pub fn run_hardened(
    config: &RsaAttackConfig,
    harden: crate::defend::Hardener<'_>,
) -> Result<RsaAttackReport> {
    config.validate()?;
    let mut observations = Vec::with_capacity(config.hamming_weights.len());
    let mut current_groups: Vec<(String, Vec<f64>)> = Vec::new();
    let mut power_groups: Vec<(String, Vec<f64>)> = Vec::new();

    for (i, &weight) in config.hamming_weights.iter().enumerate() {
        let key = RsaKey::with_hamming_weight(weight, config.seed ^ (i as u64))
            .map_err(|e| AttackError::InvalidParameter(e.to_string()))?;
        let mut platform = Platform::zcu102(config.seed.wrapping_add(i as u64 * 7_919));
        platform.deploy_rsa(RsaConfig::default(), key)?;
        harden(&mut platform)?;
        let sampler = CurrentSampler::unprivileged(&platform);
        let start = SimTime::from_ms(40);
        let current = sampler.capture(
            PowerDomain::FpgaLogic,
            Channel::Current,
            start,
            config.sample_rate_hz,
            config.samples_per_key,
        )?;
        let power = sampler.capture(
            PowerDomain::FpgaLogic,
            Channel::Power,
            start,
            config.sample_rate_hz,
            config.samples_per_key,
        )?;
        let power_mw: Vec<f64> = power.samples.iter().map(|uw| uw / 1_000.0).collect();
        observations.push(KeyObservation {
            hamming_weight: weight,
            current_ma: Summary::from_samples(&current.samples)?,
            power_mw: Summary::from_samples(&power_mw)?,
        });
        current_groups.push((format!("HW={weight}"), current.samples));
        power_groups.push((format!("HW={weight}"), power_mw));
    }

    let current_refs: Vec<(&str, &[f64])> = current_groups
        .iter()
        .map(|(l, s)| (l.as_str(), s.as_slice()))
        .collect();
    let power_refs: Vec<(&str, &[f64])> = power_groups
        .iter()
        .map(|(l, s)| (l.as_str(), s.as_slice()))
        .collect();
    // Resolutions: the hwmon current node reads integer mA (1 mA floor).
    // The power register steps in 25 x current LSB; on the paper's sensor
    // calibration that is the quoted "maximum resolution of 25 mW", so two
    // keys whose true power difference is below that LSB latch
    // indistinguishable register values.
    let power_lsb_mw = 25.0;
    let current_separability = separability_quantized(&current_refs, config.z_score, 1.0)?;
    let power_separability = separability_quantized(&power_refs, config.z_score, power_lsb_mw)?;

    Ok(RsaAttackReport {
        observations,
        current_separability,
        power_separability,
    })
}

/// Recovers the *positional* bit-density profile of the key — which
/// regions of the exponent hold its 1-bits — by phase-folding a fast
/// capture over the (constant-time) encryption period.
///
/// This goes beyond the paper's aggregate Hamming weight: with the sensor
/// reconfigured to its fastest update interval (2 ms — a **root**
/// operation, so this models an insider/privileged-malware scenario
/// rather than the paper's unprivileged attacker), each conversion
/// averages ~190 of the 10.56 µs iterations, and folding samples by their
/// phase inside the 10.85 ms encryption period yields per-window mean
/// currents. Subtracting the always-on square term and dividing by the
/// multiplier's contribution estimates the fraction of 1-bits in each of
/// `bins` contiguous windows of the exponent.
///
/// # Errors
///
/// * [`AttackError::NotDeployed`] if no RSA circuit is deployed.
/// * [`AttackError::InvalidParameter`] for zero `bins`/`samples`.
/// * [`AttackError::Hwmon`] on sampling failures.
pub fn windowed_profile(
    platform: &Platform,
    bins: usize,
    samples: usize,
    start: SimTime,
) -> Result<Vec<f64>> {
    let rsa = platform
        .rsa()
        .ok_or(AttackError::NotDeployed("rsa circuit"))?;
    if bins == 0 || samples == 0 {
        return Err(AttackError::InvalidParameter(
            "bins and samples must be non-zero".into(),
        ));
    }
    let circuit_config = *rsa.config();
    // Insider step: crank the sensor to its fastest cadence (root-only).
    platform
        .hwmon()
        .write(
            platform.sensor_path(PowerDomain::FpgaLogic, "update_interval"),
            "2",
            hwmon_sim::Privilege::Root,
        )
        .map_err(AttackError::from)?;

    let sampler = crate::CurrentSampler::privileged(platform);
    let period_ns = circuit_config.encryption_period().as_nanos();
    let rate_hz = 500.0;
    let trace = sampler.capture(
        PowerDomain::FpgaLogic,
        Channel::Current,
        start,
        rate_hz,
        samples,
    )?;

    // Phase-fold into bins over the iteration portion of the period.
    let iterations_ns =
        circuit_config.iteration_time().as_nanos() * fpga_fabric::bigint::BITS as u64;
    let mut sums = vec![0.0f64; bins];
    let mut counts = vec![0usize; bins];
    let interval_ns = SimTime::from_ms(2).as_nanos();
    for (k, &value) in trace.samples.iter().enumerate() {
        let t = start + SimTime::from_nanos(trace.period.as_nanos() * k as u64);
        // A read at `t` returns the conversion latched at the last update
        // boundary, which averaged the preceding interval — fold on the
        // center of that window, not the read instant.
        let boundary = t.as_nanos() / interval_ns * interval_ns;
        let window_center = boundary.saturating_sub(interval_ns / 2);
        let phase_ns = window_center % period_ns;
        if phase_ns >= iterations_ns {
            continue; // inter-encryption gap
        }
        let bin = (phase_ns as u128 * bins as u128 / iterations_ns as u128) as usize;
        sums[bin.min(bins - 1)] += value;
        counts[bin.min(bins - 1)] += 1;
    }
    // Normalize against the emptiest window: a bin whose exponent bits are
    // all zero draws only the floor (background + idle + square), so the
    // minimum bin mean serves as the zero-density reference and the
    // multiplier current as the full-density span. (For keys with no empty
    // window the profile is a *relative* density map.)
    let means: Vec<Option<f64>> = sums
        .iter()
        .zip(&counts)
        .map(|(&s, &n)| (n > 0).then(|| s / n as f64))
        .collect();
    let floor = means
        .iter()
        .flatten()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let profile = means
        .iter()
        .map(|m| match m {
            Some(mean) => ((mean - floor) / circuit_config.multiply_ma).clamp(0.0, 1.0),
            None => f64::NAN,
        })
        .collect();
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_weights_match_section_iv_c() {
        let w = paper_weights();
        assert_eq!(w.len(), 17);
        assert_eq!(w[0], 1);
        assert_eq!(w[1], 64);
        assert_eq!(*w.last().unwrap(), 1024);
        for pair in w[1..].windows(2) {
            assert_eq!(pair[1] - pair[0], 64);
        }
    }

    #[test]
    fn mean_current_is_monotone_in_weight() {
        let report = run(&RsaAttackConfig::quick()).unwrap();
        let means: Vec<f64> = report
            .observations
            .iter()
            .map(|o| o.current_ma.mean)
            .collect();
        for pair in means.windows(2) {
            assert!(pair[1] > pair[0], "means not monotone: {means:?}");
        }
    }

    #[test]
    fn adjacent_groups_pass_tvla_threshold() {
        let report = run(&RsaAttackConfig::quick()).unwrap();
        for (i, t) in report.adjacent_current_t().iter().enumerate() {
            assert!(*t > 4.5, "adjacent groups {i}/{} only reach t = {t}", i + 1);
        }
    }

    #[test]
    fn current_separates_more_groups_than_power() {
        let report = run(&RsaAttackConfig::quick()).unwrap();
        assert!(report.current_separates_all());
        assert!(
            report.power_separability.distinguishable
                <= report.current_separability.distinguishable
        );
    }

    #[test]
    fn rejects_empty_weights() {
        let config = RsaAttackConfig {
            hamming_weights: vec![],
            ..RsaAttackConfig::quick()
        };
        assert!(matches!(
            run(&config),
            Err(AttackError::InvalidParameter(_))
        ));
    }

    #[test]
    fn rejects_zero_weight_key() {
        let config = RsaAttackConfig {
            hamming_weights: vec![0],
            ..RsaAttackConfig::quick()
        };
        assert!(matches!(
            run(&config),
            Err(AttackError::InvalidParameter(_))
        ));
    }

    #[test]
    fn windowed_profile_localizes_key_bits() {
        use fpga_fabric::bigint::U1024;
        // A key whose 1-bits all live in the lower half of the exponent.
        let mut exponent = U1024::ZERO;
        for i in 0..512 {
            exponent.set_bit(i, true);
        }
        let key = fpga_fabric::rsa::RsaKey::new(exponent).unwrap();
        let mut platform = Platform::zcu102(314);
        platform.deploy_rsa(RsaConfig::default(), key).unwrap();

        let profile = windowed_profile(&platform, 8, 12_000, SimTime::from_ms(40)).unwrap();
        assert_eq!(profile.len(), 8);
        let low: f64 = profile[..4].iter().sum::<f64>() / 4.0;
        let high: f64 = profile[4..].iter().sum::<f64>() / 4.0;
        assert!(
            low > high + 0.4,
            "low-half density {low} must dominate high-half {high}: {profile:?}"
        );
    }

    #[test]
    fn windowed_profile_requires_rsa() {
        let platform = Platform::zcu102(315);
        assert!(matches!(
            windowed_profile(&platform, 8, 100, SimTime::ZERO),
            Err(AttackError::NotDeployed(_))
        ));
        let mut p = Platform::zcu102(316);
        p.deploy_rsa(
            RsaConfig::default(),
            RsaKey::with_hamming_weight(512, 0).unwrap(),
        )
        .unwrap();
        assert!(matches!(
            windowed_profile(&p, 0, 100, SimTime::ZERO),
            Err(AttackError::InvalidParameter(_))
        ));
    }

    #[test]
    fn search_space_shrinks_with_known_weight() {
        // Unconstrained: 1024 bits. Knowing HW always helps; the maximum
        // entropy weight (512) still saves ~5 bits.
        assert_eq!(search_space_bits(0), 0.0);
        assert!(search_space_bits(1) < 11.0);
        // Entropy bound: 1024 * H(64/1024) = 1024 * 0.337 ~ 345 bits.
        let hw64 = search_space_bits(64);
        assert!(
            (330.0..345.0).contains(&hw64),
            "C(1024,64) ~ 2^341, got {hw64}"
        );
        let hw512 = search_space_bits(512);
        assert!(hw512 < 1024.0);
        assert!(hw512 > 1015.0);
        // Symmetry: C(n, k) == C(n, n-k).
        assert!((search_space_bits(64) - search_space_bits(960)).abs() < 1e-6);
        // Monotone toward the middle.
        assert!(search_space_bits(128) > search_space_bits(64));
    }

    #[test]
    fn weight_step_is_resolvable_by_current() {
        // Adjacent paper groups sit ~8 mA apart: far above the 1 mA node
        // resolution.
        let config = RsaAttackConfig {
            hamming_weights: vec![512, 576],
            samples_per_key: 4_000,
            ..RsaAttackConfig::quick()
        };
        let report = run(&config).unwrap();
        let delta = report.observations[1].current_ma.mean - report.observations[0].current_ma.mean;
        assert!((3.0..15.0).contains(&delta), "step {delta} mA");
    }
}
