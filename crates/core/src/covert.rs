//! Fabric-to-software covert channel over the current sensors.
//!
//! A colluding circuit in the FPGA ([`fpga_fabric::covert`]) modulates its
//! switching activity with on-off keying; an unprivileged process on the
//! ARM cores demodulates the payload from the hwmon FPGA-current node.
//! The channel crosses the FPGA/CPU isolation boundary with no shared
//! memory, no crafted receiver circuit, and no privileges — the flip side
//! of the eavesdropping attacks, and further motivation for the Section V
//! mitigation (which kills this channel too).

use fpga_fabric::covert::{CovertConfig, PREAMBLE};
use zynq_soc::{PowerDomain, SimTime};

use crate::{AttackError, Channel, CurrentSampler, Platform, Result};

/// Result of one covert reception attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct Reception {
    /// Decoded payload bytes.
    pub payload: Vec<u8>,
    /// Sample offset at which the preamble was locked.
    pub sync_offset: usize,
    /// Fraction of preamble bit-cells that matched at the lock position
    /// (1.0 = perfect sync).
    pub sync_quality: f64,
    /// Effective payload bandwidth in bits per second (excludes preamble
    /// overhead).
    pub payload_bandwidth_bps: f64,
}

/// Receives `payload_len` bytes from a deployed covert transmitter.
///
/// The receiver knows the channel parameters (bit period, payload length —
/// agreed out of band) but not the phase: it locks onto the preamble by
/// correlation, then majority-votes each bit cell.
///
/// # Errors
///
/// * [`AttackError::NotDeployed`] if no transmitter is deployed (the
///   receiver would only decode noise).
/// * [`AttackError::InvalidParameter`] for a zero payload length.
/// * [`AttackError::Hwmon`] if sampling fails (e.g. under the mitigation).
pub fn receive(
    platform: &Platform,
    config: &CovertConfig,
    payload_len: usize,
    start: SimTime,
) -> Result<Reception> {
    if payload_len == 0 {
        return Err(AttackError::InvalidParameter(
            "payload length must be non-zero".into(),
        ));
    }
    if platform.covert_transmitter().is_none() {
        return Err(AttackError::NotDeployed("covert transmitter"));
    }

    let frame_bits = PREAMBLE.len() + payload_len * 8;
    // Oversample each bit cell ~7x (the sensor updates at 35 ms; extra
    // samples see held values but make slot voting robust to phase).
    let sample_period = SimTime::from_nanos(config.bit_period.as_nanos() / 7);
    let rate_hz = 1.0 / sample_period.as_secs_f64();
    let samples_per_bit = 7usize;
    let frame_samples = frame_bits * samples_per_bit;
    // Two frames guarantee one complete frame at any phase.
    let count = frame_samples * 2 + samples_per_bit;

    let sampler = CurrentSampler::unprivileged(platform);
    let trace = sampler.capture(
        PowerDomain::FpgaLogic,
        Channel::Current,
        start,
        rate_hz,
        count,
    )?;

    // Threshold at the amplitude midpoint.
    let min = trace.samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = trace
        .samples
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let threshold = (min + max) / 2.0;
    let bits: Vec<bool> = trace.samples.iter().map(|&s| s > threshold).collect();

    // Majority vote of the slot starting at sample `pos`.
    let slot_vote = |pos: usize| -> bool {
        let ones = bits[pos..pos + samples_per_bit]
            .iter()
            .filter(|&&b| b)
            .count();
        ones * 2 > samples_per_bit
    };

    // Preamble lock: best correlation over one frame of candidate offsets.
    let mut best_offset = 0usize;
    let mut best_score = -1i64;
    for offset in 0..frame_samples {
        let mut score = 0i64;
        for (i, &expect) in PREAMBLE.iter().enumerate() {
            let pos = offset + i * samples_per_bit;
            if slot_vote(pos) == expect {
                score += 1;
            }
        }
        if score > best_score {
            best_score = score;
            best_offset = offset;
        }
    }
    let sync_quality = best_score as f64 / PREAMBLE.len() as f64;

    // Decode the payload bit cells following the preamble.
    let mut payload = vec![0u8; payload_len];
    for (byte_idx, byte) in payload.iter_mut().enumerate() {
        for bit in 0..8 {
            let cell = PREAMBLE.len() + byte_idx * 8 + bit;
            let pos = best_offset + cell * samples_per_bit;
            if slot_vote(pos) {
                *byte |= 1 << (7 - bit);
            }
        }
    }

    let frame_time = config.bit_period.as_secs_f64() * frame_bits as f64;
    Ok(Reception {
        payload,
        sync_offset: best_offset,
        sync_quality,
        payload_bandwidth_bps: (payload_len * 8) as f64 / frame_time,
    })
}

/// Full covert-channel round trip on a fresh platform derived from
/// `seed`: deploys a transmitter carrying `payload`, receives it back
/// through the hwmon current node, and reports the reception plus its bit
/// error rate. A pure function of `(config, payload, seed)` — the entry
/// point the serving layer routes `covert` requests to, with every
/// parameter injected per request.
///
/// # Errors
///
/// [`AttackError::InvalidParameter`] for an empty payload; otherwise the
/// deployment and [`receive`] failure modes.
pub fn round_trip(config: &CovertConfig, payload: &[u8], seed: u64) -> Result<(Reception, f64)> {
    round_trip_hardened(config, payload, seed, crate::defend::UNDEFENDED)
}

/// [`round_trip`] against a defended platform: `harden` runs after the
/// transmitter deploys and before reception, so the receiver reads the
/// sensing path with the countermeasure in place.
///
/// # Errors
///
/// As [`round_trip`], plus whatever `harden` returns.
pub fn round_trip_hardened(
    config: &CovertConfig,
    payload: &[u8],
    seed: u64,
    harden: crate::defend::Hardener<'_>,
) -> Result<(Reception, f64)> {
    if payload.is_empty() {
        return Err(AttackError::InvalidParameter(
            "payload must be non-empty".into(),
        ));
    }
    let mut platform = Platform::zcu102(seed);
    platform.deploy_covert_transmitter(*config, payload)?;
    harden(&mut platform)?;
    let rx = receive(&platform, config, payload.len(), SimTime::from_ms(40))?;
    let ber = bit_error_rate(payload, &rx.payload);
    Ok((rx, ber))
}

/// Bit error rate between a sent and received byte string (compared up to
/// the shorter length; length mismatch counts the missing bytes as fully
/// erroneous).
pub fn bit_error_rate(sent: &[u8], received: &[u8]) -> f64 {
    if sent.is_empty() && received.is_empty() {
        return 0.0;
    }
    let common = sent.len().min(received.len());
    let mut errors: u32 = sent[..common]
        .iter()
        .zip(&received[..common])
        .map(|(a, b)| (a ^ b).count_ones())
        .sum();
    errors += 8 * (sent.len().abs_diff(received.len())) as u32;
    errors as f64 / (8 * sent.len().max(received.len())) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform_with_tx(payload: &[u8], config: CovertConfig) -> Platform {
        let mut p = Platform::zcu102(77);
        p.deploy_covert_transmitter(config, payload).unwrap();
        p
    }

    #[test]
    fn round_trip_ascii_payload() {
        let payload = b"AmpereBleed";
        let config = CovertConfig::default();
        let p = platform_with_tx(payload, config);
        let rx = receive(&p, &config, payload.len(), SimTime::from_ms(40)).unwrap();
        assert_eq!(
            rx.payload,
            payload,
            "decoded {:?}",
            String::from_utf8_lossy(&rx.payload)
        );
        assert!(rx.sync_quality >= 0.99);
        assert_eq!(bit_error_rate(payload, &rx.payload), 0.0);
        assert!(rx.payload_bandwidth_bps > 5.0);
    }

    #[test]
    fn reception_requires_transmitter() {
        let p = Platform::zcu102(78);
        assert!(matches!(
            receive(&p, &CovertConfig::default(), 4, SimTime::ZERO),
            Err(AttackError::NotDeployed(_))
        ));
    }

    #[test]
    fn zero_payload_rejected() {
        let config = CovertConfig::default();
        let p = platform_with_tx(b"x", config);
        assert!(matches!(
            receive(&p, &config, 0, SimTime::ZERO),
            Err(AttackError::InvalidParameter(_))
        ));
    }

    #[test]
    fn weak_signal_degrades_ber() {
        // A 3 mA swing is at the noise floor: expect bit errors.
        let payload = b"secret-key-bits!";
        let weak = CovertConfig {
            on_ma: 3.0,
            ..CovertConfig::default()
        };
        let p = platform_with_tx(payload, weak);
        let rx = receive(&p, &weak, payload.len(), SimTime::from_ms(40)).unwrap();
        let ber = bit_error_rate(payload, &rx.payload);
        assert!(
            ber > 0.02,
            "a 3 mA swing should not decode cleanly (ber {ber})"
        );
    }

    #[test]
    fn ber_helper() {
        assert_eq!(bit_error_rate(&[], &[]), 0.0);
        assert_eq!(bit_error_rate(&[0xFF], &[0xFF]), 0.0);
        assert_eq!(bit_error_rate(&[0xFF], &[0x00]), 1.0);
        assert_eq!(bit_error_rate(&[0xF0], &[0x00]), 0.5);
        // Length mismatch counts missing bytes as errors.
        assert_eq!(bit_error_rate(&[0xFF, 0xFF], &[0xFF]), 0.5);
    }

    #[test]
    fn arbitrary_phase_still_syncs() {
        let payload = b"phase";
        let config = CovertConfig::default();
        let p = platform_with_tx(payload, config);
        // Start mid-frame at an awkward offset.
        let rx = receive(&p, &config, payload.len(), SimTime::from_ms(1_234)).unwrap();
        assert_eq!(rx.payload, payload);
    }
}
