//! AmpereBleed: current-based, circuit-free power side-channel attacks on
//! ARM-FPGA SoCs.
//!
//! This crate reproduces the attack of *AmpereBleed: Exploiting On-chip
//! Current Sensors for Circuit-Free Attacks on ARM-FPGA SoCs* (DAC 2025)
//! on a fully simulated platform. The paper's insight: even when the PDN
//! stabilizer pins the FPGA rail voltage inside a millivolt band (killing
//! classic ring-oscillator attacks), the rail *current* still tracks the
//! victim's dynamic power one-for-one (Eq. 2), and the board's INA226
//! sensors hand that current to any unprivileged process through hwmon.
//!
//! # Architecture
//!
//! * [`Platform`] — a ZCU102-class SoC: fabric, power domains, PDN with
//!   stabilizer, four INA226 sensors behind a simulated hwmon sysfs, and
//!   deployment slots for the victim circuits (power-virus array, RSA-1024
//!   accelerator, DPU) and the RO baseline.
//! * [`CurrentSampler`] — the unprivileged attacker: polls hwmon attribute
//!   files at a chosen rate and returns [`Trace`]s.
//! * [`characterize`] — the Figure 2 experiment (161 activity levels;
//!   Pearson correlations; the 261x RO comparison).
//! * [`fingerprint`] — the Table III / Figure 3 DPU model-fingerprinting
//!   attack (offline training, online classification, accuracy grids).
//! * [`rsa_attack`] — the Figure 4 RSA Hamming-weight attack.
//! * [`mitigation`] — the Section V countermeasure (root-only sensors) and
//!   its effect on each attack.
//! * [`defend`] — the attack-vs-defense sweep: composable
//!   [`sim_defend`] layers (update jitter, quantization, noise injection,
//!   throttling, root-only) measured against each attack's success metric.
//!
//! # Quickstart
//!
//! ```
//! use amperebleed::{Channel, CurrentSampler, Platform};
//! use fpga_fabric::virus::VirusConfig;
//! use zynq_soc::{PowerDomain, SimTime};
//!
//! # fn main() -> Result<(), amperebleed::AttackError> {
//! let mut platform = Platform::zcu102(42);
//! let virus = platform.deploy_virus(VirusConfig::default())?;
//!
//! // Victim activity: 80 of 160 groups switching.
//! virus.activate_groups(80).unwrap();
//!
//! // Unprivileged attacker reads the FPGA current through hwmon.
//! let sampler = CurrentSampler::unprivileged(&platform);
//! let trace = sampler.capture(
//!     PowerDomain::FpgaLogic,
//!     Channel::Current,
//!     SimTime::from_ms(40),   // start
//!     1_000.0,                // 1 kHz
//!     100,                    // samples
//! )?;
//! assert!(trace.mean() > 3_000.0, "3+ A of virus current visible");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod characterize;
pub mod covert;
pub mod defend;
mod error;
pub mod export;
pub mod fingerprint;
pub mod mitigation;
mod platform;
pub mod rsa_attack;
mod sampler;
pub mod tee;
mod trace;
pub mod workload;

pub use error::AttackError;
pub use platform::Platform;
pub use sampler::CurrentSampler;
pub use trace::{Channel, Trace};

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, AttackError>;
