//! End-to-end checks for the tracing and telemetry plane: the span
//! forest of a served request mix is byte-identical at any pool width,
//! and the `stats` verb answers the same percentile records over the
//! wire as the JSONL metrics export.

use std::sync::{Arc, Mutex, OnceLock};

use sim_rt::pool::Pool;
use sim_rt::ser::Value;
use sim_serve::farm::Farm;
use sim_serve::scheduler::{SchedConfig, Scheduler, Sink};
use sim_serve::{Client, Request, Server, ServerConfig};

/// The trace log and recording flag are process-global; tests that touch
/// them serialize on this guard.
fn guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Serves a fixed request mix on a fresh scheduler at the given pool
/// width and returns the structural JSONL export of the span forest:
/// client request → scheduler batch → board → campaign phases.
fn serve_forest(threads: usize) -> String {
    let _ = obs::trace::take();
    let s = Scheduler::new(SchedConfig::default(), Farm::new(11, 4), Pool::new(threads));
    let responses = Arc::new(Mutex::new(Vec::new()));
    let sink_responses = Arc::clone(&responses);
    let sink: Sink = Arc::new(move |resp| {
        sink_responses
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(resp);
    });

    // Two identical quickstarts from different tenants (they batch onto
    // one execution), a ping, a covert round trip, and a small
    // characterize sweep.
    let quickstart_cfg = Value::Object(vec![("samples_per_level".into(), Value::Int(10))]);
    let mut q1 = Request::new(1, "quickstart");
    q1.tenant = "alice".into();
    q1.seed = Some(5);
    q1.config = quickstart_cfg.clone();
    let mut q2 = Request::new(2, "quickstart");
    q2.tenant = "bob".into();
    q2.seed = Some(5);
    q2.config = quickstart_cfg;
    let ping = Request::new(3, "ping");
    let mut covert = Request::new(4, "covert");
    covert.seed = Some(9);
    covert.config = Value::Object(vec![("payload".into(), Value::Str("hi".into()))]);
    let mut characterize = Request::new(5, "characterize");
    characterize.seed = Some(7);
    characterize.config = Value::Object(vec![
        (
            "levels".into(),
            Value::Array(vec![Value::Int(0), Value::Int(40)]),
        ),
        ("samples_per_level".into(), Value::Int(10)),
    ]);

    for req in [q1, q2, ping, covert, characterize] {
        s.submit(req, Arc::clone(&sink));
    }
    s.begin_drain();
    s.dispatch_loop();

    let responses = responses
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    assert_eq!(responses.len(), 5);
    for resp in responses.iter() {
        assert!(resp.is_ok(), "request {} failed: {:?}", resp.id, resp.error);
        assert!(resp.trace.is_some(), "request {} lost its trace", resp.id);
    }

    let records = obs::trace::take();
    obs::trace::forest_to_jsonl(&obs::trace::build_forest(&records))
}

#[test]
fn served_span_forest_is_identical_across_pool_widths() {
    let _guard = guard();
    obs::trace::set_recording(true);
    let serial = serve_forest(1);
    for name in [
        "\"request\"",
        "\"batch\"",
        "\"board\"",
        "\"quicklook\"",
        "\"sweep\"",
    ] {
        assert!(serial.contains(name), "forest misses {name}:\n{serial}");
    }
    for threads in [2, 8] {
        assert_eq!(
            serial,
            serve_forest(threads),
            "served span forest must not depend on pool width ({threads} threads)"
        );
    }
}

#[test]
fn stats_verb_matches_jsonl_export_over_the_wire() {
    let _guard = guard();
    let hist = obs::metrics::histogram("test.wire.frozen_hist".to_string());
    hist.observe(7);
    hist.observe(400);
    hist.observe(90_000);

    let server = Server::bind(ServerConfig {
        boards: 1,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address");
    sim_rt::pool::service_scope(|svc| {
        let join = svc.spawn("stats-wire-server", move || server.run());

        let mut client = Client::connect(addr).expect("connect");
        let resp = client.stats(Value::Null).expect("stats response");
        assert!(resp.is_ok(), "stats failed: {:?}", resp.error);
        let result = resp.result.as_ref().expect("stats result");
        assert!(result.get("queue_depth").is_some());
        let rows = result
            .get("metrics")
            .and_then(Value::as_array)
            .expect("metrics array");
        let wire_row = rows
            .iter()
            .find(|r| r.get("name").and_then(Value::as_str) == Some("test.wire.frozen_hist"))
            .expect("frozen histogram served");

        // The same record from the local export, through the same JSON
        // parser the wire row went through — percentiles must agree
        // exactly.
        let jsonl = obs::metrics::snapshot().to_jsonl();
        let line = jsonl
            .lines()
            .find(|l| l.contains("\"test.wire.frozen_hist\""))
            .expect("frozen histogram exported");
        let exported = sim_rt::json::parse(line).expect("export line parses");
        assert_eq!(*wire_row, exported);

        client.shutdown_server().expect("shutdown ack");
        join.join().expect("server thread");
    });
}
