//! The store's acceptance gate: enabling the content-addressed result
//! store must be **observable only in latency and the `cached` flag** —
//! never in result bytes.
//!
//! The matrix this file pins, at pool widths 1, 2 and 8:
//!
//! * store disabled → `result` byte-identical to the serial reference;
//! * store enabled, cold → byte-identical, nothing served from cache;
//! * store enabled, warm (same process, hot tier) → byte-identical and
//!   every response flagged `cached`;
//! * store enabled, warm (fresh process over the same directory — the
//!   restart case) → byte-identical and every response flagged `cached`.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::PathBuf;

use sim_rt::pool::{service_scope, Pool};
use sim_rt::ser::Value;
use sim_serve::{exec, Client, Server, ServerConfig, ServerHandle};
use sim_store::StoreConfig;

fn with_server<T>(cfg: ServerConfig, f: impl FnOnce(SocketAddr, ServerHandle) -> T) -> T {
    struct DrainGuard(ServerHandle);
    impl Drop for DrainGuard {
        fn drop(&mut self) {
            self.0.shutdown();
        }
    }

    let server = Server::bind(cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let handle = server.handle();
    service_scope(|svc| {
        let guard = DrainGuard(handle.clone());
        let join = svc.spawn("store-test-server", move || server.run());
        let out = f(addr, handle.clone());
        drop(guard);
        join.join().expect("server thread");
        out
    })
}

fn obj(fields: &[(&str, Value)]) -> Value {
    Value::Object(
        fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    )
}

/// The request mix: cheap verbs with pinned seeds, covering distinct
/// verbs, distinct seeds for one verb, and distinct configs for one
/// `(verb, seed)` — the three axes of the content address.
fn plan(client: usize) -> (&'static str, u64, Value) {
    match client {
        0 => (
            "quickstart",
            2_000,
            obj(&[("samples_per_level", Value::Int(40))]),
        ),
        1 => (
            "quickstart",
            2_001,
            obj(&[("samples_per_level", Value::Int(40))]),
        ),
        2 => (
            "quickstart",
            2_000,
            obj(&[("samples_per_level", Value::Int(50))]),
        ),
        _ => (
            "covert",
            2_002,
            obj(&[("payload", Value::Str("st".into()))]),
        ),
    }
}

const CLIENTS: usize = 4;

fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("sim-serve-store-det-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Sends the full plan, asserting ok status, and returns
/// `(result bytes, cached flag)` per client.
fn run_plan(addr: SocketAddr) -> Vec<(String, Option<bool>)> {
    let clients: Vec<usize> = (0..CLIENTS).collect();
    Pool::new(CLIENTS).par_map(&clients, |_, &client| {
        let mut conn = Client::connect(addr).expect("connect");
        let (verb, seed, config) = plan(client);
        let resp = conn.request(verb, Some(seed), config).expect("request");
        assert_eq!(resp.status, "ok", "{verb}: {:?}", resp.error);
        (resp.result.expect("ok has a result").to_json(), resp.cached)
    })
}

#[test]
fn results_are_byte_identical_with_store_off_cold_and_warm() {
    let mut reference: BTreeMap<usize, String> = BTreeMap::new();
    for client in 0..CLIENTS {
        let (verb, seed, config) = plan(client);
        let value = exec::execute(verb, seed, &config).expect("serial reference");
        reference.insert(client, value.to_json());
    }
    let check = |results: &[(String, Option<bool>)], label: &str, threads: usize| {
        for (client, (got, _)) in results.iter().enumerate() {
            assert_eq!(
                got, &reference[&client],
                "client {client} diverged ({label}, width {threads})"
            );
        }
    };

    for threads in [1usize, 2, 8] {
        let dir = tmpdir(&format!("w{threads}"));
        let base = ServerConfig {
            boards: 2,
            farm_seed: 13,
            threads,
            ..ServerConfig::default()
        };

        // Store disabled.
        let off = with_server(base.clone(), |addr, _| run_plan(addr));
        check(&off, "store off", threads);
        assert!(
            off.iter().all(|(_, cached)| *cached != Some(true)),
            "storeless server claimed a cache hit"
        );

        // Store enabled, cold directory, then warm within the same
        // process (hot tier).
        let store_cfg = ServerConfig {
            store: Some(StoreConfig {
                dir: Some(dir.clone()),
                ..StoreConfig::default()
            }),
            ..base.clone()
        };
        let (cold, hot_warm) = with_server(store_cfg.clone(), |addr, _| {
            (run_plan(addr), run_plan(addr))
        });
        check(&cold, "store cold", threads);
        assert!(
            cold.iter().all(|(_, cached)| *cached != Some(true)),
            "cold store claimed a cache hit"
        );
        check(&hot_warm, "hot tier warm", threads);
        assert!(
            hot_warm.iter().all(|(_, cached)| *cached == Some(true)),
            "hot-tier replay missed: {:?}",
            hot_warm.iter().map(|(_, c)| c).collect::<Vec<_>>()
        );

        // Fresh server over the same directory: the restart case. Every
        // result must replay from the persistent tier, byte-identical.
        let warm = with_server(store_cfg, |addr, _| run_plan(addr));
        check(&warm, "persistent warm", threads);
        assert!(
            warm.iter().all(|(_, cached)| *cached == Some(true)),
            "persistent replay missed: {:?}",
            warm.iter().map(|(_, c)| c).collect::<Vec<_>>()
        );

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A store hit replays the *effective* seed: unpinned requests resolve to
/// the farm default before the lookup, so a pinned request for the same
/// seed shares the address, and the hit still reports the seed.
#[test]
fn unpinned_requests_share_the_default_seed_address() {
    let cfg = ServerConfig {
        boards: 2,
        farm_seed: 91,
        store: Some(StoreConfig::default()),
        ..ServerConfig::default()
    };
    with_server(cfg, |addr, _| {
        let mut conn = Client::connect(addr).unwrap();
        let config = obj(&[("samples_per_level", Value::Int(30))]);
        let first = conn.request("quickstart", None, config.clone()).unwrap();
        assert!(first.is_ok());
        let default_seed = first.seed.expect("resolved seed");
        // Pinning the resolved seed hits the unpinned request's entry.
        let second = conn
            .request("quickstart", Some(default_seed), config.clone())
            .unwrap();
        assert_eq!(second.cached, Some(true));
        assert_eq!(second.seed, Some(default_seed));
        assert_eq!(
            first.result.unwrap().to_json(),
            second.result.unwrap().to_json()
        );
        // A different config misses: the address covers the config too.
        let other = conn
            .request(
                "quickstart",
                Some(default_seed),
                obj(&[("samples_per_level", Value::Int(31))]),
            )
            .unwrap();
        assert_ne!(other.cached, Some(true));
    });
}

/// Store hits must answer even when the admission path would shed: they
/// bypass the queue and the token bucket entirely.
#[test]
fn store_hits_bypass_admission_control() {
    let cfg = ServerConfig {
        boards: 1,
        farm_seed: 17,
        store: Some(StoreConfig::default()),
        sched: sim_serve::SchedConfig {
            // One token, slow refill: only the first *executed* request
            // fits the bucket.
            rate_per_sec: 0.001,
            burst: 1.0,
            ..sim_serve::SchedConfig::default()
        },
        ..ServerConfig::default()
    };
    with_server(cfg, |addr, _| {
        let mut conn = Client::connect(addr).unwrap();
        let config = obj(&[("samples_per_level", Value::Int(25))]);
        let first = conn.request("quickstart", Some(5), config.clone()).unwrap();
        assert!(first.is_ok(), "{:?}", first.error);
        // The bucket is now empty; replays still answer, from the store.
        for _ in 0..3 {
            let replay = conn.request("quickstart", Some(5), config.clone()).unwrap();
            assert_eq!(replay.status, "ok", "{:?}", replay.error);
            assert_eq!(replay.cached, Some(true));
        }
        // A *miss* with an empty bucket sheds as before.
        let miss = conn.request("quickstart", Some(6), config.clone()).unwrap();
        assert_eq!(miss.status, "shed", "{:?}", miss.status);
    });
}
