//! Satellite gate: the `serve.*` instrumentation and the runtime's
//! lock-order / pool gauges all surface through the export layer
//! (`metrics_to_csv` / `metrics_to_jsonl`), so a farm operator scraping
//! either format sees the full serving picture.
//!
//! This file is also the workspace's metric-name pin table. sim-lint's
//! `metric-name-drift` rule reconciles [`PINNED_METRICS`] against every
//! metric-name literal registered in library code: a literal missing
//! here, or a pin no code registers, fails CI in both directions.

use sim_rt::pool::service_scope;
use sim_rt::ser::Value;
use sim_serve::{Client, Server, ServerConfig};
use sim_store::StoreConfig;

/// Every statically-named metric the workspace registers, one pin per
/// `counter!`/`gauge!`/`histogram!` literal. Kept sorted.
const PINNED_METRICS: &[&str] = &[
    "defend.blocked",
    "defend.point.ns",
    "defend.points",
    "defend.stack.installs",
    "defend.stack.transforms",
    "defend.sweeps",
    "defend.throttle.trips",
    "dpu.model_loads",
    "fabric.virus.activations",
    "fabric.virus.active_groups",
    "flight.dropped",
    "flight.dumps",
    "flight.events",
    "hwmon.fs.reads",
    "hwmon.fs.reads_denied",
    "hwmon.fs.writes",
    "hwmon.reads.fresh",
    "hwmon.reads.held",
    "ina226.clips.bus",
    "ina226.clips.current",
    "ina226.clips.shunt",
    "ina226.conversions",
    "lockorder.acquisitions",
    "lockorder.cycles_detected",
    "lockorder.edges_tracked",
    "pool.profile.enabled",
    "pool.profile.run_ns",
    "pool.profile.samples",
    "pool.profile.steal_ns",
    "rforest.fits",
    "sampler.capture.ns",
    "sampler.read_errors",
    "sampler.reads.current",
    "sampler.reads.held_fastpath",
    "sampler.reads.power",
    "sampler.reads.voltage",
    "serve.accept_errors",
    "serve.admitted",
    "serve.bad_requests",
    "serve.batch.deduped",
    "serve.batch.groups",
    "serve.batch.size",
    "serve.connections",
    "serve.drains",
    "serve.exec.latency_ns",
    "serve.farm.boards",
    "serve.farm.checkouts",
    "serve.farm.free",
    "serve.farm.platform_inits",
    "serve.farm.waits",
    "serve.queue.depth",
    "serve.request.latency_ns",
    "serve.requests",
    "serve.responses.error",
    "serve.responses.ok",
    "serve.stats.requests",
    "serve.timeouts",
    "serve.tx_errors",
    "soc.oppoint.cache_hit",
    "soc.oppoint.cache_miss",
    "store.bytes",
    "store.checkpoint.points",
    "store.checkpoint.resumed",
    "store.decode_errors",
    "store.entries",
    "store.evictions",
    "store.hits",
    "store.hits.persist",
    "store.inserts",
    "store.io_errors",
    "store.lookup.ns",
    "store.misses",
    "store.persist.entries",
    "store.recovered_truncated",
    "store.segments",
    "trace.log.dropped",
    "trace.roots",
    "trace.spans",
    "zynq.pdn.droop_uv",
    "zynq.pdn.transients",
    "zynq.thermal.junction_c",
    "zynq.thermal.leakage_scale",
    "zynq.thermal.throttle_crossings",
];

/// Metric names assembled at runtime (`format!`-built), which the linter
/// cannot tie to a literal: the `record_pool_stats` gauge family under
/// `serve.pool.*`, the per-status `serve.responses.*` counters, and the
/// per-kind `serve.shed.*` counters.
const DYNAMIC_METRICS: &[&str] = &[
    "serve.pool.busy_nanos",
    "serve.pool.jobs_completed",
    "serve.pool.jobs_per_sec",
    "serve.pool.jobs_retried",
    "serve.pool.jobs_stolen",
    "serve.pool.maps_run",
    "serve.responses.shed",
    "serve.responses.timeout",
    "serve.shed.queue_full",
    "serve.shed.quota_exceeded",
    "serve.shed.rate_limited",
    "serve.shed.shutting_down",
];

#[test]
fn pin_table_is_sorted_and_unique() {
    for table in [PINNED_METRICS, DYNAMIC_METRICS] {
        for pair in table.windows(2) {
            assert!(pair[0] < pair[1], "{:?} out of order or duplicated", pair);
        }
    }
    for d in DYNAMIC_METRICS {
        assert!(
            !PINNED_METRICS.contains(d),
            "{d} is both pinned and dynamic"
        );
    }
}

#[test]
fn serve_metrics_surface_in_csv_and_jsonl_exports() {
    // Drive one real request (plus a drain) so every serve.* family has
    // at least one sample in the process-global registry.
    let server = Server::bind(ServerConfig {
        boards: 2,
        farm_seed: 21,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    service_scope(|svc| {
        let join = svc.spawn("metrics-server", move || server.run());
        let mut conn = Client::connect(addr).expect("connect");
        let config = Value::Object(vec![("samples_per_level".into(), Value::Int(30))]);
        // Unpinned: adopts board 0's seed, which exercises the
        // board-image fast path (and its platform_inits counter).
        let resp = conn.request("quickstart", None, config).expect("request");
        assert!(resp.is_ok(), "{:?}", resp.error);
        conn.shutdown_server().expect("drain ack");
        join.join().expect("server thread");
    });

    let snapshot = obs::metrics::snapshot();
    let csv = amperebleed::export::metrics_to_csv(&snapshot);
    let jsonl = amperebleed::export::metrics_to_jsonl(&snapshot);
    for name in [
        // serve.* counters and gauges added by this subsystem
        "serve.requests",
        "serve.admitted",
        "serve.responses.ok",
        "serve.connections",
        "serve.drains",
        "serve.queue.depth",
        "serve.farm.boards",
        "serve.farm.checkouts",
        "serve.farm.platform_inits",
        "serve.farm.free",
        // latency / batching histograms
        "serve.batch.size",
        "serve.request.latency_ns",
        "serve.exec.latency_ns",
        // pre-existing runtime gauges that must keep flowing through
        "serve.pool.jobs_stolen",
        "lockorder.acquisitions",
        "lockorder.edges_tracked",
        "lockorder.cycles_detected",
    ] {
        assert!(
            PINNED_METRICS.contains(&name) || DYNAMIC_METRICS.contains(&name),
            "{name} asserted here but absent from the pin table"
        );
        assert!(csv.contains(name), "{name} missing from metrics_to_csv");
        assert!(jsonl.contains(name), "{name} missing from metrics_to_jsonl");
    }
}

#[test]
fn trace_flight_and_profile_metrics_surface_in_exports() {
    // One traced request plus a `stats` query touches every trace.* /
    // flight.* counter (they register eagerly, so even families with no
    // increments yet must surface), and snapshot() syncs the
    // pool.profile.* gauges unconditionally.
    let server = Server::bind(ServerConfig {
        boards: 1,
        farm_seed: 29,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    service_scope(|svc| {
        let join = svc.spawn("trace-metrics-server", move || server.run());
        let mut conn = Client::connect(addr).expect("connect");
        let resp = conn.request("ping", None, Value::Null).expect("request");
        assert!(resp.is_ok(), "{:?}", resp.error);
        let trace = resp.trace.as_deref().expect("served response has a trace");
        assert_eq!(trace.len(), 16, "trace id is 16 hex chars: {trace:?}");
        assert!(trace.chars().all(|c| c.is_ascii_hexdigit()), "{trace:?}");
        let stats = conn.stats(Value::Null).expect("stats response");
        assert!(stats.is_ok(), "{:?}", stats.error);
        conn.shutdown_server().expect("drain ack");
        join.join().expect("server thread");
    });

    let snapshot = obs::metrics::snapshot();
    let csv = amperebleed::export::metrics_to_csv(&snapshot);
    let jsonl = amperebleed::export::metrics_to_jsonl(&snapshot);
    for name in [
        "trace.spans",
        "trace.roots",
        "trace.log.dropped",
        "flight.events",
        "flight.dumps",
        "flight.dropped",
        "pool.profile.enabled",
        "pool.profile.samples",
        "pool.profile.run_ns",
        "pool.profile.steal_ns",
        "serve.stats.requests",
    ] {
        assert!(
            PINNED_METRICS.contains(&name) || DYNAMIC_METRICS.contains(&name),
            "{name} asserted here but absent from the pin table"
        );
        assert!(csv.contains(name), "{name} missing from metrics_to_csv");
        assert!(jsonl.contains(name), "{name} missing from metrics_to_jsonl");
    }
}

#[test]
fn store_metrics_surface_in_exports() {
    // The same request twice against a hot-tier store: the first misses
    // and inserts, the second is served from the store, so every always-
    // registered store.* family has a sample.
    let server = Server::bind(ServerConfig {
        boards: 1,
        farm_seed: 41,
        store: Some(StoreConfig::default()),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    service_scope(|svc| {
        let join = svc.spawn("store-metrics-server", move || server.run());
        let mut conn = Client::connect(addr).expect("connect");
        let config = Value::Object(vec![("samples_per_level".into(), Value::Int(20))]);
        let cold = conn
            .request("quickstart", Some(7), config.clone())
            .expect("request");
        assert!(cold.is_ok(), "{:?}", cold.error);
        assert_ne!(cold.cached, Some(true), "first request cannot hit");
        let warm = conn
            .request("quickstart", Some(7), config)
            .expect("request");
        assert!(warm.is_ok(), "{:?}", warm.error);
        assert_eq!(warm.cached, Some(true), "second request must hit");
        assert_eq!(
            cold.result.map(|v| v.to_json()),
            warm.result.map(|v| v.to_json()),
            "store hit must replay identical result bytes"
        );
        conn.shutdown_server().expect("drain ack");
        join.join().expect("server thread");
    });

    let snapshot = obs::metrics::snapshot();
    let csv = amperebleed::export::metrics_to_csv(&snapshot);
    let jsonl = amperebleed::export::metrics_to_jsonl(&snapshot);
    for name in [
        "store.hits",
        "store.misses",
        "store.inserts",
        "store.lookup.ns",
        "store.entries",
        "store.bytes",
    ] {
        assert!(
            PINNED_METRICS.contains(&name) || DYNAMIC_METRICS.contains(&name),
            "{name} asserted here but absent from the pin table"
        );
        assert!(csv.contains(name), "{name} missing from metrics_to_csv");
        assert!(jsonl.contains(name), "{name} missing from metrics_to_jsonl");
    }
}

#[test]
fn defend_metrics_surface_in_exports() {
    // One served defend sweep (noise + throttle on the covert channel)
    // touches every defend.* metric family: the sweep/point counters in
    // core, and the stack install/transform/trip counters in sim-defend.
    let server = Server::bind(ServerConfig {
        boards: 1,
        farm_seed: 23,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    service_scope(|svc| {
        let join = svc.spawn("defend-metrics-server", move || server.run());
        let mut conn = Client::connect(addr).expect("connect");
        let config = Value::Object(vec![
            ("attack".into(), Value::Str("covert".into())),
            (
                "layers".into(),
                Value::Array(vec![
                    Value::Str("noise".into()),
                    Value::Str("throttle".into()),
                ]),
            ),
            ("strengths".into(), Value::Array(vec![Value::Float(0.9)])),
            ("payload".into(), Value::Str("m".into())),
        ]);
        let resp = conn.request("defend", Some(31), config).expect("request");
        assert!(resp.is_ok(), "{:?}", resp.error);
        conn.shutdown_server().expect("drain ack");
        join.join().expect("server thread");
    });

    let snapshot = obs::metrics::snapshot();
    let csv = amperebleed::export::metrics_to_csv(&snapshot);
    let jsonl = amperebleed::export::metrics_to_jsonl(&snapshot);
    for name in [
        "defend.sweeps",
        "defend.points",
        "defend.point.ns",
        "defend.stack.installs",
        "defend.stack.transforms",
        "defend.throttle.trips",
    ] {
        assert!(
            PINNED_METRICS.contains(&name) || DYNAMIC_METRICS.contains(&name),
            "{name} asserted here but absent from the pin table"
        );
        assert!(csv.contains(name), "{name} missing from metrics_to_csv");
        assert!(jsonl.contains(name), "{name} missing from metrics_to_jsonl");
    }
}
