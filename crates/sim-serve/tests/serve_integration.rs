//! End-to-end tests over real TCP: determinism under concurrency, typed
//! backpressure, deadlines, and graceful shutdown.

use std::collections::BTreeMap;
use std::net::SocketAddr;

use sim_rt::pool::{service_scope, Pool};
use sim_rt::rng::derive_seed;
use sim_rt::ser::Value;
use sim_serve::{exec, Client, SchedConfig, Server, ServerConfig, ServerHandle};

/// Runs `f` against a live server, guaranteeing drain + join even if the
/// body panics (the drop guard fires the ctrl-channel shutdown).
fn with_server<T>(cfg: ServerConfig, f: impl FnOnce(SocketAddr, ServerHandle) -> T) -> T {
    struct DrainGuard(ServerHandle);
    impl Drop for DrainGuard {
        fn drop(&mut self) {
            self.0.shutdown();
        }
    }

    let server = Server::bind(cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let handle = server.handle();
    service_scope(|svc| {
        let guard = DrainGuard(handle.clone());
        let join = svc.spawn("test-server", move || server.run());
        let out = f(addr, handle.clone());
        drop(guard);
        join.join().expect("server thread");
        out
    })
}

fn obj(fields: &[(&str, Value)]) -> Value {
    Value::Object(
        fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    )
}

/// The request mix for the determinism gate: every client sends one
/// campaign request with a pinned seed.
fn plan(client: usize) -> (&'static str, u64, Value) {
    let seed = 1_000 + client as u64;
    match client % 4 {
        0 => (
            "quickstart",
            seed,
            obj(&[("samples_per_level", Value::Int(60))]),
        ),
        1 => (
            "characterize",
            seed,
            obj(&[
                ("level_step", Value::Int(40)),
                ("samples_per_level", Value::Int(50)),
            ]),
        ),
        2 => (
            "rsa",
            seed,
            obj(&[
                (
                    "hamming_weights",
                    Value::Array(vec![Value::Int(1), Value::Int(512), Value::Int(1024)]),
                ),
                ("samples_per_key", Value::Int(400)),
            ]),
        ),
        _ => (
            "covert",
            seed,
            obj(&[("payload", Value::Str("det".into()))]),
        ),
    }
}

/// The acceptance gate: ≥8 concurrent clients against a 4-board farm,
/// each response's `result` byte-identical to the same request run
/// serially against a fresh single board with the same seed, at pool
/// widths 1, 2, and 8.
#[test]
fn concurrent_results_are_byte_identical_to_serial() {
    // Serial reference results, computed once on fresh platforms.
    let mut reference: BTreeMap<usize, String> = BTreeMap::new();
    for client in 0..8 {
        let (verb, seed, config) = plan(client);
        let value = exec::execute(verb, seed, &config).expect("serial reference");
        reference.insert(client, value.to_json());
    }

    for threads in [1usize, 2, 8] {
        let cfg = ServerConfig {
            boards: 4,
            farm_seed: 11,
            threads,
            ..ServerConfig::default()
        };
        let results = with_server(cfg, |addr, _| {
            let clients: Vec<usize> = (0..8).collect();
            Pool::new(8).par_map(&clients, |_, &client| {
                let mut conn = Client::connect(addr).expect("connect");
                conn.set_tenant(format!("tenant-{client}"));
                let (verb, seed, config) = plan(client);
                let resp = conn.request(verb, Some(seed), config).expect("request");
                assert_eq!(resp.status, "ok", "{verb}: {:?}", resp.error);
                assert_eq!(resp.seed, Some(seed));
                (client, resp.result.expect("ok has a result").to_json())
            })
        });
        for (client, got) in results {
            assert_eq!(
                got, reference[&client],
                "client {client} diverged at pool width {threads}"
            );
        }
    }
}

/// Unpinned requests adopt the farm default seed at admission, so the
/// response both names the seed and matches its serial replay.
#[test]
fn unpinned_requests_adopt_the_farm_default_seed() {
    let cfg = ServerConfig {
        boards: 2,
        farm_seed: 77,
        ..ServerConfig::default()
    };
    with_server(cfg, |addr, _| {
        let mut conn = Client::connect(addr).unwrap();
        let config = obj(&[("samples_per_level", Value::Int(40))]);
        let resp = conn.request("quickstart", None, config.clone()).unwrap();
        assert!(resp.is_ok());
        let default_seed = derive_seed(77, 0);
        assert_eq!(resp.seed, Some(default_seed));
        let want = exec::execute("quickstart", default_seed, &config).unwrap();
        assert_eq!(resp.result.unwrap().to_json(), want.to_json());
    });
}

/// Fingerprint rides the same wire contract (kept out of the 3×8 sweep
/// above only because forest training dominates its runtime).
#[test]
fn fingerprint_over_the_wire_matches_serial() {
    let config = obj(&[
        ("traces_per_model", Value::Int(4)),
        ("capture_seconds", Value::Float(1.0)),
        ("resample_len", Value::Int(16)),
        ("folds", Value::Int(2)),
        ("n_models", Value::Int(2)),
    ]);
    let want = exec::execute("fingerprint", 31, &config).unwrap().to_json();
    let cfg = ServerConfig {
        boards: 1,
        ..ServerConfig::default()
    };
    with_server(cfg, |addr, _| {
        let mut conn = Client::connect(addr).unwrap();
        let resp = conn
            .request("fingerprint", Some(31), config.clone())
            .unwrap();
        assert_eq!(resp.status, "ok", "{:?}", resp.error);
        assert_eq!(resp.result.unwrap().to_json(), want);
    });
}

/// The defend sweep over the wire matches its serial replay byte for
/// byte — the served path adds no nondeterminism to the attack-vs-defense
/// report (acceptance criterion of the defend verb).
#[test]
fn defend_over_the_wire_matches_serial() {
    let config = obj(&[
        ("attack", Value::Str("covert".into())),
        (
            "layers",
            Value::Array(vec![
                Value::Str("jitter".into()),
                Value::Str("noise".into()),
                Value::Str("throttle".into()),
            ]),
        ),
        (
            "strengths",
            Value::Array(vec![Value::Float(0.0), Value::Float(1.0)]),
        ),
        ("payload", Value::Str("det".into())),
    ]);
    let want = exec::execute("defend", 47, &config).unwrap().to_json();
    let cfg = ServerConfig {
        boards: 1,
        ..ServerConfig::default()
    };
    with_server(cfg, |addr, _| {
        let mut conn = Client::connect(addr).unwrap();
        let resp = conn.request("defend", Some(47), config.clone()).unwrap();
        assert_eq!(resp.status, "ok", "{:?}", resp.error);
        assert_eq!(resp.result.unwrap().to_json(), want);
    });
}

/// A tenant blowing through its token bucket gets typed `shed` responses
/// while the admitted request still completes.
#[test]
fn rate_limited_tenant_sheds_with_typed_error() {
    let cfg = ServerConfig {
        boards: 1,
        sched: SchedConfig {
            burst: 1.0,
            rate_per_sec: 0.0,
            ..SchedConfig::default()
        },
        ..ServerConfig::default()
    };
    with_server(cfg, |addr, _| {
        let mut conn = Client::connect(addr).unwrap();
        let ids: Vec<i64> = (0..3)
            .map(|_| conn.send("ping", None, Value::Null).unwrap())
            .collect();
        let responses: Vec<_> = ids.iter().map(|&id| conn.wait(id).unwrap()).collect();
        let ok = responses.iter().filter(|r| r.is_ok()).count();
        let shed: Vec<_> = responses.iter().filter(|r| r.status == "shed").collect();
        assert_eq!(ok, 1, "exactly the burst is admitted");
        assert_eq!(shed.len(), 2);
        for resp in shed {
            assert_eq!(resp.error_kind.as_deref(), Some("rate_limited"));
        }
    });
}

/// An expired deadline returns `timeout` and the board keeps serving.
#[test]
fn expired_deadline_times_out_and_board_keeps_serving() {
    let cfg = ServerConfig {
        boards: 1,
        ..ServerConfig::default()
    };
    with_server(cfg, |addr, _| {
        let mut conn = Client::connect(addr).unwrap();
        let doomed = conn
            .send_with_deadline("quickstart", Some(5), Some(0), Value::Null)
            .unwrap();
        let resp = conn.wait(doomed).unwrap();
        assert_eq!(resp.status, "timeout");
        assert_eq!(resp.error_kind.as_deref(), Some("deadline_exceeded"));
        // The board went back to the free pool: a follow-up is served.
        let resp = conn.request("ping", None, Value::Null).unwrap();
        assert!(resp.is_ok());
    });
}

/// Malformed lines get a typed `bad_request` answer instead of killing
/// the connection.
#[test]
fn malformed_lines_answer_bad_request() {
    with_server(ServerConfig::default(), |addr, _| {
        use std::io::{BufRead, BufReader, Write};
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.write_all(b"{\"id\":1,\"verb\":\n").unwrap();
        let mut line = String::new();
        BufReader::new(stream.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        let resp = sim_serve::protocol::parse_response(line.trim()).unwrap();
        assert_eq!(resp.status, "error");
        assert_eq!(resp.error_kind.as_deref(), Some("bad_request"));
        assert_eq!(resp.id, -1);
    });
}

/// Graceful shutdown: everything admitted before the `shutdown` verb is
/// answered (zero lost responses), the ack carries drain stats, and the
/// server process winds down to a closed socket.
#[test]
fn graceful_shutdown_drains_with_zero_lost_responses() {
    let cfg = ServerConfig {
        boards: 2,
        farm_seed: 5,
        ..ServerConfig::default()
    };
    with_server(cfg, |addr, _| {
        let mut conn = Client::connect(addr).unwrap();
        let config = obj(&[("samples_per_level", Value::Int(30))]);
        let ids: Vec<i64> = (0..6)
            .map(|i| {
                conn.send("quickstart", Some(200 + i), config.clone())
                    .unwrap()
            })
            .collect();
        let ack_id = conn.send("shutdown", None, Value::Null).unwrap();

        for &id in &ids {
            let resp = conn.wait(id).unwrap();
            assert!(resp.is_ok(), "request {id} lost in drain: {:?}", resp.error);
        }
        let ack = conn.wait(ack_id).unwrap();
        assert!(ack.is_ok());
        let stats = ack.result.expect("drain stats");
        assert_eq!(stats.get("drained").unwrap().as_bool(), Some(true));
        assert!(stats.get("served").unwrap().as_i64().unwrap() >= 6);
        assert_eq!(stats.get("boards").unwrap().as_i64(), Some(2));

        // The server closes the connection after the drain.
        let eof = conn.wait(9_999);
        assert!(eof.is_err(), "connection should reach EOF after drain");
    });
}

/// The ctrl-channel (SIGTERM-equivalent) drains without a client.
#[test]
fn ctrl_channel_shutdown_stops_an_idle_server() {
    // with_server's guard IS the ctrl-channel path: if begin_drain did
    // not stop an idle server, this test would hang on join.
    with_server(ServerConfig::default(), |addr, _| {
        let mut conn = Client::connect(addr).unwrap();
        assert!(conn.request("ping", None, Value::Null).unwrap().is_ok());
    });
}
