//! Pure verb execution: `execute(verb, seed, config)` is a function of
//! its arguments only, so any scheduling of the same request produces a
//! byte-identical `result` value. The server calls through here; tests
//! call it directly to build the serial reference results.

use amperebleed::characterize::{self, CharacterizeConfig};
use amperebleed::defend::{self, AttackKind, DefendConfig};
use amperebleed::fingerprint::{self, FingerprintConfig};
use amperebleed::rsa_attack::{self, RsaAttackConfig};
use amperebleed::{covert, AttackError, Platform};
use fpga_fabric::covert::CovertConfig;
use fpga_fabric::ring_oscillator::RoConfig;
use fpga_fabric::virus::VirusConfig;
use sim_defend::LayerKind;
use sim_rt::pool::Pool;
use sim_rt::ser::Value;
use zynq_soc::SimTime;

/// The campaign verbs the server multiplexes (plus the control verb
/// `shutdown`, which the scheduler intercepts before execution).
pub const VERBS: &[&str] = &[
    "ping",
    "quickstart",
    "characterize",
    "fingerprint",
    "rsa",
    "covert",
    "defend",
];

/// Typed execution failure, mapped onto the wire as
/// `status:"error", error_kind, error`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecError {
    /// One of `unknown_verb`, `bad_config`, `invalid_parameter`,
    /// `attack_failed`, `internal_error`.
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ExecError {
    fn bad_config(message: impl Into<String>) -> ExecError {
        ExecError {
            kind: "bad_config",
            message: message.into(),
        }
    }

    /// A server-side invariant failed. The request gets a structured
    /// `internal_error` response instead of the worker thread panicking
    /// and taking the farm board with it.
    pub(crate) fn internal(message: impl Into<String>) -> ExecError {
        ExecError {
            kind: "internal_error",
            message: message.into(),
        }
    }
}

impl From<AttackError> for ExecError {
    fn from(e: AttackError) -> ExecError {
        let kind = match &e {
            AttackError::InvalidParameter(_) => "invalid_parameter",
            _ => "attack_failed",
        };
        ExecError {
            kind,
            message: e.to_string(),
        }
    }
}

/// Whether `verb` runs against a ready platform (booted from a farm
/// board's pristine image when the seeds match).
pub fn uses_board_platform(verb: &str) -> bool {
    matches!(verb, "quickstart" | "characterize")
}

/// Whether `verb` is servable at all.
pub fn known_verb(verb: &str) -> bool {
    VERBS.contains(&verb)
}

/// Maps a request verb onto its `'static` name from [`VERBS`] (or
/// `"other"`), so trace spans can label themselves without allocating.
fn static_verb(verb: &str) -> &'static str {
    VERBS
        .iter()
        .copied()
        .find(|v| *v == verb)
        .unwrap_or("other")
}

/// Builds the platform a farm board would hold for `seed`: ZCU102 with
/// the power-virus array and RO bank deployed.
///
/// # Errors
///
/// Propagates deployment failures as [`ExecError`].
pub fn ready_platform(seed: u64) -> Result<Platform, ExecError> {
    let mut platform = Platform::zcu102(seed);
    platform.deploy_virus(VirusConfig::default())?;
    platform.deploy_ro_bank(RoConfig::default())?;
    Ok(platform)
}

/// Runs `verb` from scratch: platform verbs construct a fresh
/// [`ready_platform`] from `seed`. This is the serial reference the
/// determinism contract is stated against.
///
/// # Errors
///
/// [`ExecError`] for unknown verbs, bad configs, and campaign failures.
pub fn execute(verb: &str, seed: u64, config: &Value) -> Result<Value, ExecError> {
    let _span = obs::trace::span("serve.exec", static_verb(verb));
    if uses_board_platform(verb) {
        let platform = ready_platform(seed)?;
        execute_on_inner(&platform, verb, seed, config)
    } else {
        execute_pure(verb, seed, config)
    }
}

/// Runs a platform verb against an existing ready platform, or delegates
/// to the pure path for the rest. Byte-identical to [`execute`] with the
/// platform's construction seed **only while the platform is pristine**:
/// campaign sweeps drive the power-virus activation timeline, so a used
/// platform answers differently — which is why the farm boots a fresh
/// image per run instead of caching one (see `farm::Board`).
///
/// # Errors
///
/// [`ExecError`] for unknown verbs, bad configs, and campaign failures.
pub fn execute_on(
    platform: &Platform,
    verb: &str,
    seed: u64,
    config: &Value,
) -> Result<Value, ExecError> {
    let _span = obs::trace::span("serve.exec", static_verb(verb));
    execute_on_inner(platform, verb, seed, config)
}

fn execute_on_inner(
    platform: &Platform,
    verb: &str,
    seed: u64,
    config: &Value,
) -> Result<Value, ExecError> {
    match verb {
        "quickstart" => {
            let samples = quickstart_samples(config)?;
            let report = characterize::quicklook(platform, samples)?;
            Ok(characterize_result(&report))
        }
        "characterize" => {
            let cfg = characterize_config(config)?;
            let report = characterize::run(platform, &cfg)?;
            Ok(characterize_result(&report))
        }
        _ => execute_pure(verb, seed, config),
    }
}

/// Verbs that build their own platforms internally from `seed`.
fn execute_pure(verb: &str, seed: u64, config: &Value) -> Result<Value, ExecError> {
    match verb {
        "ping" => {
            expect_no_overrides(config, "ping")?;
            Ok(obj(vec![("pong", Value::Bool(true))]))
        }
        "fingerprint" => {
            let (cfg, n_models) = fingerprint_config(config, seed)?;
            let grid = fingerprint::run_with(&cfg, n_models, &Pool::serial())?;
            Ok(fingerprint_result(&grid))
        }
        "rsa" => {
            let cfg = rsa_config(config, seed)?;
            let report = rsa_attack::run(&cfg)?;
            Ok(rsa_result(&report))
        }
        "covert" => {
            let (cfg, payload) = covert_config(config)?;
            let (rx, ber) = covert::round_trip(&cfg, &payload, seed)?;
            Ok(obj(vec![
                ("sent", Value::Str(String::from_utf8_lossy(&payload).into())),
                (
                    "decoded",
                    Value::Str(String::from_utf8_lossy(&rx.payload).into()),
                ),
                ("ber", Value::Float(ber)),
                ("clean", Value::Bool(ber == 0.0)),
                ("sync_offset", Value::Int(rx.sync_offset as i64)),
                ("sync_quality", Value::Float(rx.sync_quality)),
                ("bandwidth_bps", Value::Float(rx.payload_bandwidth_bps)),
            ]))
        }
        "defend" => {
            let cfg = defend_config(config, seed)?;
            let report = defend::run_with(&cfg, &Pool::serial())?;
            Ok(defend_result(&report))
        }
        other => Err(ExecError {
            kind: "unknown_verb",
            message: format!("unknown verb `{other}`"),
        }),
    }
}

// --- config override parsing ------------------------------------------

fn overrides<'a>(config: &'a Value, verb: &str) -> Result<&'a [(String, Value)], ExecError> {
    match config {
        Value::Null => Ok(&[]),
        Value::Object(fields) => Ok(fields),
        _ => Err(ExecError::bad_config(format!(
            "`{verb}` config must be an object"
        ))),
    }
}

fn expect_no_overrides(config: &Value, verb: &str) -> Result<(), ExecError> {
    match overrides(config, verb)? {
        [] => Ok(()),
        [(key, _), ..] => Err(ExecError::bad_config(format!(
            "`{verb}` takes no config overrides (got `{key}`)"
        ))),
    }
}

fn need_usize(key: &str, v: &Value) -> Result<usize, ExecError> {
    v.as_u64()
        .map(|n| n as usize)
        .ok_or_else(|| ExecError::bad_config(format!("`{key}` must be a non-negative integer")))
}

fn need_f64(key: &str, v: &Value) -> Result<f64, ExecError> {
    v.as_f64()
        .ok_or_else(|| ExecError::bad_config(format!("`{key}` must be a number")))
}

fn need_u32_array(key: &str, v: &Value) -> Result<Vec<u32>, ExecError> {
    let items = v
        .as_array()
        .ok_or_else(|| ExecError::bad_config(format!("`{key}` must be an array of integers")))?;
    items
        .iter()
        .map(|item| {
            item.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| ExecError::bad_config(format!("`{key}` entries must fit in u32")))
        })
        .collect()
}

fn unknown_key(verb: &str, key: &str) -> ExecError {
    ExecError::bad_config(format!("unknown `{verb}` config key `{key}`"))
}

fn quickstart_samples(config: &Value) -> Result<usize, ExecError> {
    let mut samples = 120usize;
    for (key, v) in overrides(config, "quickstart")? {
        match key.as_str() {
            "samples_per_level" => samples = need_usize(key, v)?,
            _ => return Err(unknown_key("quickstart", key)),
        }
    }
    Ok(samples)
}

fn characterize_config(config: &Value) -> Result<CharacterizeConfig, ExecError> {
    let mut cfg = CharacterizeConfig::quick();
    for (key, v) in overrides(config, "characterize")? {
        match key.as_str() {
            "level_step" => {
                let step = need_usize(key, v)?.max(1);
                cfg.levels = (0..=160).step_by(step).collect();
            }
            "levels" => cfg.levels = need_u32_array(key, v)?,
            "samples_per_level" => cfg.samples_per_level = need_usize(key, v)?,
            "sample_rate_hz" => cfg.sample_rate_hz = need_f64(key, v)?,
            "settle_ms" => cfg.settle = SimTime::from_ms(need_usize(key, v)? as u64),
            _ => return Err(unknown_key("characterize", key)),
        }
    }
    Ok(cfg)
}

fn fingerprint_config(config: &Value, seed: u64) -> Result<(FingerprintConfig, usize), ExecError> {
    let mut cfg = FingerprintConfig::quick();
    cfg.seed = seed;
    let mut n_models = 3usize;
    for (key, v) in overrides(config, "fingerprint")? {
        match key.as_str() {
            "traces_per_model" => cfg.traces_per_model = need_usize(key, v)?,
            "capture_seconds" => cfg.capture_seconds = need_f64(key, v)?,
            "resample_len" => cfg.resample_len = need_usize(key, v)?,
            "folds" => cfg.folds = need_usize(key, v)?,
            "n_models" => n_models = need_usize(key, v)?,
            _ => return Err(unknown_key("fingerprint", key)),
        }
    }
    Ok((cfg, n_models))
}

fn rsa_config(config: &Value, seed: u64) -> Result<RsaAttackConfig, ExecError> {
    let mut cfg = RsaAttackConfig::quick();
    cfg.seed = seed;
    for (key, v) in overrides(config, "rsa")? {
        match key.as_str() {
            "hamming_weights" => cfg.hamming_weights = need_u32_array(key, v)?,
            "samples_per_key" => cfg.samples_per_key = need_usize(key, v)?,
            "sample_rate_hz" => cfg.sample_rate_hz = need_f64(key, v)?,
            "z_score" => cfg.z_score = need_f64(key, v)?,
            _ => return Err(unknown_key("rsa", key)),
        }
    }
    Ok(cfg)
}

fn covert_config(config: &Value) -> Result<(CovertConfig, Vec<u8>), ExecError> {
    let mut cfg = CovertConfig::default();
    let mut payload: Vec<u8> = b"amperebleed".to_vec();
    for (key, v) in overrides(config, "covert")? {
        match key.as_str() {
            "payload" => {
                payload = v
                    .as_str()
                    .ok_or_else(|| ExecError::bad_config("`payload` must be a string"))?
                    .as_bytes()
                    .to_vec();
            }
            "on_ma" => cfg.on_ma = need_f64(key, v)?,
            "jitter" => cfg.jitter = need_f64(key, v)?,
            "bit_period_ms" => cfg.bit_period = SimTime::from_ms(need_usize(key, v)? as u64),
            _ => return Err(unknown_key("covert", key)),
        }
    }
    Ok((cfg, payload))
}

fn need_f64_array(key: &str, v: &Value) -> Result<Vec<f64>, ExecError> {
    let items = v
        .as_array()
        .ok_or_else(|| ExecError::bad_config(format!("`{key}` must be an array of numbers")))?;
    items.iter().map(|item| need_f64(key, item)).collect()
}

fn defend_config(config: &Value, seed: u64) -> Result<DefendConfig, ExecError> {
    let mut cfg = DefendConfig::quick(AttackKind::Covert);
    cfg.seed = seed;
    for (key, v) in overrides(config, "defend")? {
        match key.as_str() {
            "attack" => {
                let tag = v
                    .as_str()
                    .ok_or_else(|| ExecError::bad_config("`attack` must be a string"))?;
                cfg.attack = AttackKind::from_tag(tag).ok_or_else(|| {
                    ExecError::bad_config(format!(
                        "unknown attack `{tag}` (rsa|fingerprint|covert)"
                    ))
                })?;
            }
            "layers" => {
                let tags = v.as_array().ok_or_else(|| {
                    ExecError::bad_config("`layers` must be an array of layer tags")
                })?;
                cfg.layers = tags
                    .iter()
                    .map(|t| {
                        t.as_str().and_then(LayerKind::from_tag).ok_or_else(|| {
                            ExecError::bad_config(format!(
                                "unknown defense layer `{}`",
                                t.as_str().unwrap_or("<non-string>")
                            ))
                        })
                    })
                    .collect::<Result<_, _>>()?;
            }
            "strengths" => cfg.strengths = need_f64_array(key, v)?,
            "payload" => {
                cfg.payload = v
                    .as_str()
                    .ok_or_else(|| ExecError::bad_config("`payload` must be a string"))?
                    .as_bytes()
                    .to_vec();
            }
            "samples_per_key" => cfg.rsa.samples_per_key = need_usize(key, v)?,
            "n_models" => cfg.n_models = need_usize(key, v)?,
            "traces_per_model" => cfg.fingerprint.traces_per_model = need_usize(key, v)?,
            _ => return Err(unknown_key("defend", key)),
        }
    }
    Ok(cfg)
}

// --- result encoding ---------------------------------------------------

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn opt_float(v: Option<f64>) -> Value {
    v.map(Value::Float).unwrap_or(Value::Null)
}

fn characterize_result(r: &characterize::CharacterizationReport) -> Value {
    obj(vec![
        ("levels", Value::Int(r.rows.len() as i64)),
        ("pearson_current", Value::Float(r.pearson_current)),
        ("pearson_voltage", Value::Float(r.pearson_voltage)),
        ("pearson_power", Value::Float(r.pearson_power)),
        ("pearson_ro", opt_float(r.pearson_ro)),
        ("current_slope_ma", Value::Float(r.fit_current.slope)),
        (
            "voltage_lsb_per_step",
            Value::Float(r.voltage_lsb_per_step()),
        ),
        ("variation_ratio_vs_ro", opt_float(r.variation_ratio_vs_ro)),
    ])
}

fn fingerprint_result(grid: &fingerprint::AccuracyGrid) -> Value {
    let cells: Vec<Value> = grid
        .rows
        .iter()
        .flat_map(|(sc, cells)| {
            cells.iter().map(move |cell| {
                obj(vec![
                    (
                        "channel",
                        Value::Str(format!("{}/{}", sc.domain, sc.channel)),
                    ),
                    ("duration_s", Value::Float(cell.duration_s)),
                    ("top1", Value::Float(cell.top1)),
                    ("top5", Value::Float(cell.top5)),
                ])
            })
        })
        .collect();
    obj(vec![
        ("classes", Value::Int(grid.n_classes as i64)),
        ("chance", Value::Float(grid.chance())),
        ("cells", Value::Array(cells)),
    ])
}

fn rsa_result(report: &rsa_attack::RsaAttackReport) -> Value {
    let weights: Vec<Value> = report
        .observations
        .iter()
        .map(|o| Value::Int(o.hamming_weight as i64))
        .collect();
    obj(vec![
        ("keys", Value::Int(report.observations.len() as i64)),
        ("weights", Value::Array(weights)),
        (
            "current_distinguishable",
            Value::Int(report.current_separability.distinguishable as i64),
        ),
        (
            "power_distinguishable",
            Value::Int(report.power_separability.distinguishable as i64),
        ),
        (
            "current_separates_all",
            Value::Bool(report.current_separates_all()),
        ),
    ])
}

fn defend_result(report: &defend::DefendReport) -> Value {
    let points: Vec<Value> = report
        .points
        .iter()
        .map(|p| {
            obj(vec![
                ("strength", Value::Float(p.strength)),
                ("success", Value::Float(p.success)),
                ("blocked", Value::Bool(p.blocked)),
            ])
        })
        .collect();
    obj(vec![
        ("attack", Value::Str(report.attack.tag().into())),
        ("stack", Value::Str(report.stack.clone())),
        ("baseline_success", Value::Float(report.baseline.success)),
        ("points", Value::Array(points)),
        ("auc", Value::Float(report.curve.auc())),
        ("table", Value::Str(report.render())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_is_trivially_pure() {
        let a = execute("ping", 1, &Value::Null).unwrap();
        let b = execute("ping", 2, &Value::Null).unwrap();
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn unknown_verb_and_bad_configs_are_typed() {
        assert_eq!(
            execute("frobnicate", 1, &Value::Null).unwrap_err().kind,
            "unknown_verb"
        );
        let cfg = Value::Object(vec![("bogus".into(), Value::Int(1))]);
        assert_eq!(execute("rsa", 1, &cfg).unwrap_err().kind, "bad_config");
        let cfg = Value::Object(vec![("samples_per_key".into(), Value::Int(0))]);
        assert_eq!(
            execute("rsa", 1, &cfg).unwrap_err().kind,
            "invalid_parameter"
        );
        assert_eq!(
            execute("ping", 1, &Value::Array(vec![])).unwrap_err().kind,
            "bad_config"
        );
    }

    #[test]
    fn quickstart_is_pure_on_pristine_platforms_only() {
        let seed = 4242;
        let fresh = execute("quickstart", seed, &Value::Null).unwrap();
        let platform = ready_platform(seed).unwrap();
        let first = execute_on(&platform, "quickstart", seed, &Value::Null).unwrap();
        assert_eq!(fresh.to_json(), first.to_json());
        // A second run on the now-used platform diverges: the sweep drove
        // the activation timeline. This divergence is exactly why the
        // farm re-images boards per campaign run instead of caching
        // platforms — if it ever becomes an equality, caching is safe.
        let second = execute_on(&platform, "quickstart", seed, &Value::Null).unwrap();
        assert_ne!(fresh.to_json(), second.to_json());
    }

    #[test]
    fn defend_runs_a_one_point_sweep_through_the_verb() {
        let cfg = Value::Object(vec![
            ("attack".into(), Value::Str("covert".into())),
            (
                "layers".into(),
                Value::Array(vec![Value::Str("noise".into())]),
            ),
            ("strengths".into(), Value::Array(vec![Value::Float(0.8)])),
            ("payload".into(), Value::Str("hi".into())),
        ]);
        let result = execute("defend", 11, &cfg).unwrap();
        assert_eq!(result.get("attack").unwrap().as_str(), Some("covert"));
        assert_eq!(result.get("stack").unwrap().as_str(), Some("noise"));
        let points = result.get("points").unwrap().as_array().unwrap();
        assert_eq!(points.len(), 1);
        assert!(result
            .get("table")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("defend sweep"));
        // Pure: identical request, identical bytes.
        let again = execute("defend", 11, &cfg).unwrap();
        assert_eq!(result.to_json(), again.to_json());
    }

    #[test]
    fn defend_rejects_unknown_attacks_and_layers() {
        let cfg = Value::Object(vec![("attack".into(), Value::Str("dma".into()))]);
        assert_eq!(execute("defend", 1, &cfg).unwrap_err().kind, "bad_config");
        let cfg = Value::Object(vec![(
            "layers".into(),
            Value::Array(vec![Value::Str("tinfoil".into())]),
        )]);
        assert_eq!(execute("defend", 1, &cfg).unwrap_err().kind, "bad_config");
        let cfg = Value::Object(vec![(
            "strengths".into(),
            Value::Array(vec![Value::Float(2.0)]),
        )]);
        assert_eq!(
            execute("defend", 1, &cfg).unwrap_err().kind,
            "invalid_parameter"
        );
    }

    #[test]
    fn covert_round_trips_through_the_verb() {
        let cfg = Value::Object(vec![("payload".into(), Value::Str("hi".into()))]);
        let result = execute("covert", 9, &cfg).unwrap();
        assert_eq!(result.get("decoded").unwrap().as_str(), Some("hi"));
        assert_eq!(result.get("clean").unwrap().as_bool(), Some(true));
    }
}
