//! The board farm: N lazily-constructed platforms behind a checkout /
//! checkin free list.
//!
//! Each board's seed is split off the farm seed with
//! [`sim_rt::rng::derive_seed`]`(farm_seed, board_index)`, so board
//! identity — not scheduling order — decides every stochastic component.
//! Requests that pin a seed get a platform booted from that seed
//! wherever they land; requests that don't adopt the farm's default seed
//! (board 0's), fixed at admission so the result never depends on board
//! placement.

use std::sync::{Condvar, Mutex};

use amperebleed::Platform;
use sim_rt::rng::derive_seed;

use crate::exec::{self, ExecError};

/// One slot of the farm. Platforms are constructed lazily, one pristine
/// image per campaign run — booting a board is the expensive part, and a
/// farm sized for peak load shouldn't pay for boards that only ever
/// serve platform-free verbs (rsa/fingerprint/covert build their own).
///
/// Campaign runs consume the image: a characterization sweep drives the
/// power-virus activation timeline, so a used platform answers slightly
/// differently than a fresh one and must never be reused (the same
/// reason a physical farm re-flashes the bitstream between jobs).
#[derive(Debug)]
pub struct Board {
    /// Slot index (stable across checkouts).
    pub id: usize,
    /// This board's split seed: `derive_seed(farm_seed, id)`.
    pub seed: u64,
}

impl Board {
    /// Boots a pristine platform image for this board.
    ///
    /// # Errors
    ///
    /// Propagates deployment failures.
    pub fn image(&self) -> Result<Platform, ExecError> {
        obs::counter!("serve.farm.platform_inits").inc();
        exec::ready_platform(self.seed)
    }
}

#[derive(Debug)]
struct FarmInner {
    /// `Some(board)` = free, `None` = checked out.
    slots: Vec<Option<Board>>,
    free: usize,
}

/// The farm itself: a bounded pool of boards with blocking checkout.
#[derive(Debug)]
pub struct Farm {
    farm_seed: u64,
    inner: Mutex<FarmInner>,
    freed: Condvar,
}

impl Farm {
    /// Creates a farm of `boards` lazily-booted boards.
    ///
    /// # Panics
    ///
    /// Panics if `boards` is zero — a farm with no boards can serve
    /// nothing and would deadlock every checkout.
    pub fn new(farm_seed: u64, boards: usize) -> Farm {
        assert!(boards > 0, "a farm needs at least one board");
        let slots = (0..boards)
            .map(|id| {
                Some(Board {
                    id,
                    seed: derive_seed(farm_seed, id as u64),
                })
            })
            .collect();
        obs::gauge!("serve.farm.boards").set(boards as f64);
        Farm {
            farm_seed,
            inner: Mutex::new(FarmInner {
                slots,
                free: boards,
            }),
            freed: Condvar::new(),
        }
    }

    /// Number of board slots.
    pub fn boards(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .slots
            .len()
    }

    /// The seed of board `id` (what a request landing there would adopt
    /// if it pinned nothing and the farm default were per-board).
    pub fn board_seed(&self, id: usize) -> u64 {
        derive_seed(self.farm_seed, id as u64)
    }

    /// The seed unpinned requests adopt (board 0's), fixed at admission
    /// so results never depend on which board a request lands on.
    pub fn default_seed(&self) -> u64 {
        self.board_seed(0)
    }

    /// Checks out a free board, blocking until one is available. Prefers
    /// the board whose split seed equals `seed` so unpinned requests hit
    /// the cached platform instead of constructing a fresh one.
    pub fn checkout(&self, seed: u64) -> Board {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if inner.free > 0 {
                let idx = inner
                    .slots
                    .iter()
                    .position(|s| s.as_ref().is_some_and(|b| b.seed == seed))
                    .or_else(|| inner.slots.iter().position(Option::is_some));
                let board = idx
                    .and_then(|i| inner.slots.get_mut(i))
                    .and_then(Option::take);
                if let Some(board) = board {
                    inner.free -= 1;
                    obs::counter!("serve.farm.checkouts").inc();
                    obs::gauge!("serve.farm.free").set(inner.free as f64);
                    return board;
                }
                // free > 0 with no occupied slot means the count drifted;
                // fall through and re-wait rather than panic the server.
                debug_assert!(false, "free count {} but no free slot", inner.free);
            }
            obs::counter!("serve.farm.waits").inc();
            inner = self
                .freed
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Returns a board to the free list and wakes one waiter.
    pub fn checkin(&self, board: Board) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let idx = board.id;
        if let Some(slot) = inner.slots.get_mut(idx) {
            debug_assert!(slot.is_none(), "double checkin of board {idx}");
            *slot = Some(board);
            inner.free += 1;
        }
        obs::gauge!("serve.farm.free").set(inner.free as f64);
        drop(inner);
        self.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_rt::ser::Value::Null;

    #[test]
    fn seeds_are_split_per_board() {
        let farm = Farm::new(99, 4);
        let seeds: Vec<u64> = (0..4).map(|i| farm.board_seed(i)).collect();
        for (i, s) in seeds.iter().enumerate() {
            assert_eq!(*s, derive_seed(99, i as u64));
            for other in &seeds[..i] {
                assert_ne!(s, other, "board seeds must be distinct");
            }
        }
        assert_eq!(farm.default_seed(), seeds[0]);
    }

    #[test]
    fn checkout_prefers_matching_seed_and_exhausts() {
        let farm = Farm::new(7, 2);
        let want = farm.board_seed(1);
        let b = farm.checkout(want);
        assert_eq!(b.id, 1, "checkout should prefer the seed-matching board");
        let other = farm.checkout(want);
        assert_eq!(other.id, 0, "fall back to any free board");
        farm.checkin(b);
        farm.checkin(other);
        assert_eq!(farm.boards(), 2);
    }

    #[test]
    fn images_are_pristine_per_run() {
        let farm = Farm::new(3, 1);
        let b = farm.checkout(farm.default_seed());
        // Each image answers like a freshly-seeded platform; a consumed
        // image is never handed out again.
        let a = crate::exec::execute_on(&b.image().unwrap(), "quickstart", b.seed, &Null).unwrap();
        let c = crate::exec::execute_on(&b.image().unwrap(), "quickstart", b.seed, &Null).unwrap();
        assert_eq!(a.to_json(), c.to_json());
        farm.checkin(b);
    }
}
