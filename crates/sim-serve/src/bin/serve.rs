//! The `serve` binary: stands up a board farm on a TCP port.
//!
//! ```text
//! serve [--addr 127.0.0.1:0] [--boards 4] [--seed 1] [--threads 0]
//!       [--queue-cap 256] [--rate 200] [--burst 50] [--max-inflight 64]
//!       [--store hot|off] [--store-dir PATH]
//! ```
//!
//! Prints `listening on <addr> (<n> boards)` once bound (scrape the
//! ephemeral port from there), serves until a `shutdown` verb arrives,
//! then prints the drained metrics table and exits 0.
//!
//! Observability hooks: the `stats` verb answers live telemetry, panics
//! and deadline expiries dump the flight recorder to
//! `AMPEREBLEED_FLIGHT_FILE`, and `AMPEREBLEED_PROFILE` enables pool
//! self-profiling (folded stacks written at shutdown — to the env var's
//! value when it names a path, to stdout otherwise).
//!
//! The content-addressed result store is off by default. `--store hot`
//! enables an in-memory hot tier; `--store-dir PATH` (or the
//! `AMPEREBLEED_STORE_DIR` env var, which the flag overrides) also
//! persists results as JSONL segments under PATH, surviving restarts.
//! `--store off` disables it even when the env var is set.

use std::io::Write;

use sim_serve::{Server, ServerConfig};
use sim_store::StoreConfig;

fn usage(out: &mut impl Write) {
    let _ = writeln!(
        out,
        "usage: serve [--addr HOST:PORT] [--boards N] [--seed N] [--threads N]\n\
         \x20            [--queue-cap N] [--rate PER_SEC] [--burst N] [--max-inflight N]\n\
         \x20            [--store hot|off] [--store-dir PATH]"
    );
}

fn parse_args(args: &[String], env_store_dir: Option<&str>) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig::default();
    if let Some(dir) = env_store_dir.filter(|d| !d.is_empty()) {
        cfg.store = Some(StoreConfig {
            dir: Some(dir.into()),
            ..StoreConfig::default()
        });
    }
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" {
            return Err(String::new());
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} needs a value"))?
            .as_str();
        let bad = |what: &str| format!("{flag}: invalid {what} `{value}`");
        match flag.as_str() {
            "--addr" => cfg.addr = value.to_string(),
            "--boards" => cfg.boards = value.parse().map_err(|_| bad("count"))?,
            "--seed" => cfg.farm_seed = value.parse().map_err(|_| bad("seed"))?,
            "--threads" => cfg.threads = value.parse().map_err(|_| bad("count"))?,
            "--queue-cap" => cfg.sched.queue_cap = value.parse().map_err(|_| bad("count"))?,
            "--rate" => cfg.sched.rate_per_sec = value.parse().map_err(|_| bad("rate"))?,
            "--burst" => cfg.sched.burst = value.parse().map_err(|_| bad("count"))?,
            "--max-inflight" => {
                cfg.sched.max_inflight = value.parse().map_err(|_| bad("count"))?;
            }
            "--store" => match value {
                "hot" => {
                    cfg.store = Some(StoreConfig::default());
                }
                "off" => cfg.store = None,
                _ => return Err(bad("mode (expected `hot` or `off`)")),
            },
            "--store-dir" => {
                cfg.store = Some(StoreConfig {
                    dir: Some(value.into()),
                    ..StoreConfig::default()
                });
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(cfg)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let env_store_dir = std::env::var("AMPEREBLEED_STORE_DIR").ok();
    let mut stdout = std::io::stdout();
    let cfg = match parse_args(&args, env_store_dir.as_deref()) {
        Ok(cfg) => cfg,
        Err(message) => {
            let mut err = std::io::stderr();
            if !message.is_empty() {
                let _ = writeln!(err, "serve: {message}");
            }
            usage(&mut err);
            std::process::exit(if message.is_empty() { 0 } else { 2 });
        }
    };

    let server = match Server::bind(cfg.clone()) {
        Ok(server) => server,
        Err(e) => {
            let _ = writeln!(std::io::stderr(), "serve: bind {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    // A panic anywhere in the process dumps the flight rings first: the
    // last few hundred events per thread are exactly the post-mortem a
    // crashed farm needs.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        obs::flight::auto_dump("panic");
        default_hook(info);
    }));
    // Startup, before any request exists: failing to report the bound
    // address is fatal by design. sim-lint: allow(panic-path)
    let addr = server.local_addr().expect("bound listener has an address");
    let _ = writeln!(stdout, "listening on {addr} ({} boards)", cfg.boards);
    let _ = stdout.flush();

    server.run();

    let snapshot = obs::metrics::snapshot();
    let _ = writeln!(stdout, "drained; final metrics:");
    let _ = write!(stdout, "{}", snapshot.render_table());
    if sim_rt::pool::profile::enabled() {
        let folded = sim_rt::pool::profile::folded();
        match sim_rt::pool::profile::output_path() {
            Some(path) => {
                if let Err(e) = std::fs::write(&path, &folded) {
                    let _ = writeln!(std::io::stderr(), "serve: profile write {path}: {e}");
                }
            }
            None => {
                let _ = write!(stdout, "{folded}");
            }
        }
    }
    let _ = writeln!(stdout, "serve: clean shutdown");
}
