//! The wire protocol: one JSON object per line, both directions.
//!
//! Requests name a campaign verb plus optional per-request overrides:
//!
//! ```json
//! {"id":1,"verb":"quickstart","tenant":"alice","seed":42,
//!  "deadline_ms":5000,"config":{"samples_per_level":120}}
//! ```
//!
//! Responses echo the request id and report a status:
//!
//! * `ok` — `result` holds the (deterministic) campaign result and
//!   `board`/`seed`/`elapsed_ms` say where and how it ran.
//! * `error` — the verb ran (or was rejected) with a typed error:
//!   `error_kind` ∈ {`bad_request`, `unknown_verb`, `bad_config`,
//!   `invalid_parameter`, `attack_failed`, `internal_error`}.
//! * `shed` — admission control refused the request without running it:
//!   `error_kind` ∈ {`rate_limited`, `quota_exceeded`, `queue_full`,
//!   `shutting_down`} (the 429-style backpressure responses).
//! * `timeout` — the request's deadline expired before a board picked it
//!   up (`error_kind` = `deadline_exceeded`).
//!
//! Only the `result` field participates in the determinism contract:
//! `board`, `elapsed_ms`, and `trace` depend on scheduling, `result`
//! never does. `trace` carries the hex trace id of the request's span
//! tree (see `obs::trace`), answering "which board/batch/phase served
//! this request" without touching the response payload.
//!
//! Besides the campaign verbs, the server answers two control verbs
//! inline: `shutdown` (graceful drain) and `stats` (live telemetry
//! snapshot — metrics registry, percentiles, per-tenant breakdowns, and
//! optionally a flight-recorder dump).

use sim_rt::json;
use sim_rt::ser::Value;

/// Default tenant for requests that do not name one.
pub const ANON_TENANT: &str = "anon";

/// Seeds are u64 but JSON integers are i64, so seeds above `i64::MAX`
/// travel as their two's-complement (negative) bit pattern. This decodes
/// either form back to the original u64.
fn seed_from(v: &Value) -> Option<u64> {
    v.as_u64().or_else(|| v.as_i64().map(|i| i as u64))
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: i64,
    /// Quota/rate-limit bucket this request draws from.
    pub tenant: String,
    /// Campaign verb (see [`crate::exec::VERBS`]) or `shutdown`.
    pub verb: String,
    /// Pinned experiment seed; unpinned requests adopt the farm default.
    pub seed: Option<u64>,
    /// Relative deadline in milliseconds from admission.
    pub deadline_ms: Option<u64>,
    /// Per-verb config overrides (`Value::Null` when absent).
    pub config: Value,
}

impl Request {
    /// A minimal request for `verb` with no overrides.
    pub fn new(id: i64, verb: impl Into<String>) -> Request {
        Request {
            id,
            tenant: ANON_TENANT.to_string(),
            verb: verb.into(),
            seed: None,
            deadline_ms: None,
            config: Value::Null,
        }
    }

    /// Renders the request as one JSON line (trailing `\n` included).
    pub fn to_json_line(&self) -> String {
        let mut fields: Vec<(String, Value)> = vec![
            ("id".into(), Value::Int(self.id)),
            ("verb".into(), Value::Str(self.verb.clone())),
        ];
        if self.tenant != ANON_TENANT {
            fields.push(("tenant".into(), Value::Str(self.tenant.clone())));
        }
        if let Some(seed) = self.seed {
            fields.push(("seed".into(), Value::Int(seed as i64)));
        }
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms".into(), Value::Int(ms as i64)));
        }
        if self.config != Value::Null {
            fields.push(("config".into(), self.config.clone()));
        }
        let mut line = Value::Object(fields).to_json();
        line.push('\n');
        line
    }
}

/// Parses one request line. Unknown top-level keys are rejected so client
/// typos surface as errors instead of silently-ignored overrides.
///
/// # Errors
///
/// A human-readable message naming the malformed field.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
    let fields = value.as_object().ok_or("request must be a JSON object")?;

    let mut req = Request::new(0, "");
    let mut saw_id = false;
    for (key, v) in fields {
        match key.as_str() {
            "id" => {
                req.id = v.as_i64().ok_or("`id` must be an integer")?;
                saw_id = true;
            }
            "verb" => {
                req.verb = v.as_str().ok_or("`verb` must be a string")?.to_string();
            }
            "tenant" => {
                req.tenant = v.as_str().ok_or("`tenant` must be a string")?.to_string();
            }
            "seed" => {
                req.seed = Some(seed_from(v).ok_or("`seed` must be an integer")?);
            }
            "deadline_ms" => {
                req.deadline_ms = Some(
                    v.as_u64()
                        .ok_or("`deadline_ms` must be a non-negative integer")?,
                );
            }
            "config" => {
                if v.as_object().is_none() {
                    return Err("`config` must be an object".into());
                }
                req.config = v.clone();
            }
            other => return Err(format!("unknown request field `{other}`")),
        }
    }
    if !saw_id {
        return Err("request is missing `id`".into());
    }
    if req.verb.is_empty() {
        return Err("request is missing `verb`".into());
    }
    Ok(req)
}

/// A server response (one JSON line on the wire).
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echo of the request id (`-1` for unparseable requests).
    pub id: i64,
    /// `ok`, `error`, `shed`, or `timeout`.
    pub status: String,
    /// Echo of the request verb.
    pub verb: String,
    /// Board the request ran on (`ok` only).
    pub board: Option<u64>,
    /// Effective experiment seed (`ok` only) — replaying this seed
    /// serially reproduces `result` byte-for-byte.
    pub seed: Option<u64>,
    /// Admission-to-response latency (scheduling-dependent; excluded from
    /// the determinism contract).
    pub elapsed_ms: Option<f64>,
    /// Campaign result (`ok` only).
    pub result: Option<Value>,
    /// Machine-readable error class (non-`ok` only).
    pub error_kind: Option<String>,
    /// Human-readable error message (non-`ok` only).
    pub error: Option<String>,
    /// Hex trace id of the request's span tree (admitted requests only).
    /// Scheduling metadata like `board` and `elapsed_ms` — excluded from
    /// the determinism contract.
    pub trace: Option<String>,
    /// `Some(true)` when the result was served from the content-addressed
    /// store instead of a fresh execution. Delivery metadata like
    /// `board` — the `result` bytes are identical either way, which is
    /// exactly what makes the store sound.
    pub cached: Option<bool>,
}

impl Response {
    /// A successful response carrying `result`.
    pub fn ok(id: i64, verb: &str, board: u64, seed: u64, elapsed_ms: f64, result: Value) -> Self {
        Response {
            id,
            status: "ok".into(),
            verb: verb.to_string(),
            board: Some(board),
            seed: Some(seed),
            elapsed_ms: Some(elapsed_ms),
            result: Some(result),
            error_kind: None,
            error: None,
            trace: None,
            cached: None,
        }
    }

    /// A non-`ok` response of the given status/kind.
    pub fn failure(id: i64, verb: &str, status: &str, kind: &str, message: String) -> Self {
        Response {
            id,
            status: status.to_string(),
            verb: verb.to_string(),
            board: None,
            seed: None,
            elapsed_ms: None,
            result: None,
            error_kind: Some(kind.to_string()),
            error: Some(message),
            trace: None,
            cached: None,
        }
    }

    /// Whether the request was served (`status == "ok"`).
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }

    /// Renders the response as one JSON line (trailing `\n` included).
    pub fn to_json_line(&self) -> String {
        let mut fields: Vec<(String, Value)> = vec![
            ("id".into(), Value::Int(self.id)),
            ("status".into(), Value::Str(self.status.clone())),
            ("verb".into(), Value::Str(self.verb.clone())),
        ];
        if let Some(board) = self.board {
            fields.push(("board".into(), Value::Int(board as i64)));
        }
        if let Some(seed) = self.seed {
            fields.push(("seed".into(), Value::Int(seed as i64)));
        }
        if let Some(ms) = self.elapsed_ms {
            fields.push(("elapsed_ms".into(), Value::Float(ms)));
        }
        if let Some(trace) = &self.trace {
            fields.push(("trace".into(), Value::Str(trace.clone())));
        }
        if let Some(cached) = self.cached {
            fields.push(("cached".into(), Value::Bool(cached)));
        }
        if let Some(result) = &self.result {
            fields.push(("result".into(), result.clone()));
        }
        if let Some(kind) = &self.error_kind {
            fields.push(("error_kind".into(), Value::Str(kind.clone())));
        }
        if let Some(msg) = &self.error {
            fields.push(("error".into(), Value::Str(msg.clone())));
        }
        let mut line = Value::Object(fields).to_json();
        line.push('\n');
        line
    }
}

/// Parses one response line (the client half of the protocol).
///
/// # Errors
///
/// A human-readable message naming the malformed field.
pub fn parse_response(line: &str) -> Result<Response, String> {
    let value = json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
    let fields = value.as_object().ok_or("response must be a JSON object")?;

    let mut resp = Response {
        id: 0,
        status: String::new(),
        verb: String::new(),
        board: None,
        seed: None,
        elapsed_ms: None,
        result: None,
        error_kind: None,
        error: None,
        trace: None,
        cached: None,
    };
    for (key, v) in fields {
        match key.as_str() {
            "id" => resp.id = v.as_i64().ok_or("`id` must be an integer")?,
            "status" => {
                resp.status = v.as_str().ok_or("`status` must be a string")?.to_string();
            }
            "verb" => resp.verb = v.as_str().ok_or("`verb` must be a string")?.to_string(),
            "board" => resp.board = Some(v.as_u64().ok_or("`board` must be an integer")?),
            "seed" => resp.seed = Some(seed_from(v).ok_or("`seed` must be an integer")?),
            "elapsed_ms" => {
                resp.elapsed_ms = Some(v.as_f64().ok_or("`elapsed_ms` must be a number")?);
            }
            "trace" => {
                resp.trace = Some(v.as_str().ok_or("`trace` must be a string")?.to_string());
            }
            "cached" => {
                resp.cached = Some(v.as_bool().ok_or("`cached` must be a bool")?);
            }
            "result" => resp.result = Some(v.clone()),
            "error_kind" => {
                resp.error_kind = Some(
                    v.as_str()
                        .ok_or("`error_kind` must be a string")?
                        .to_string(),
                );
            }
            "error" => {
                resp.error = Some(v.as_str().ok_or("`error` must be a string")?.to_string());
            }
            other => return Err(format!("unknown response field `{other}`")),
        }
    }
    if resp.status.is_empty() {
        return Err("response is missing `status`".into());
    }
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let mut req = Request::new(7, "characterize");
        req.tenant = "alice".into();
        req.seed = Some(42);
        req.deadline_ms = Some(5_000);
        req.config = Value::Object(vec![("samples_per_level".into(), Value::Int(64))]);
        let line = req.to_json_line();
        assert!(line.ends_with('\n'));
        assert_eq!(parse_request(line.trim()).unwrap(), req);
    }

    #[test]
    fn minimal_request_defaults() {
        let req = parse_request(r#"{"id":1,"verb":"ping"}"#).unwrap();
        assert_eq!(req.tenant, ANON_TENANT);
        assert_eq!(req.seed, None);
        assert_eq!(req.deadline_ms, None);
        assert_eq!(req.config, Value::Null);
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for (line, needle) in [
            ("not json", "malformed JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"verb":"ping"}"#, "missing `id`"),
            (r#"{"id":1}"#, "missing `verb`"),
            (r#"{"id":"x","verb":"ping"}"#, "`id` must be an integer"),
            (r#"{"id":1,"verb":"ping","seed":"x"}"#, "`seed`"),
            (r#"{"id":1,"verb":"ping","config":[]}"#, "`config`"),
            (
                r#"{"id":1,"verb":"ping","frob":1}"#,
                "unknown request field",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn seeds_above_i64_max_round_trip() {
        let mut req = Request::new(1, "quickstart");
        req.seed = Some(u64::MAX - 7);
        assert_eq!(parse_request(req.to_json_line().trim()).unwrap(), req);

        let ok = Response::ok(1, "quickstart", 0, u64::MAX - 7, 1.0, Value::Null);
        assert_eq!(
            parse_response(ok.to_json_line().trim()).unwrap().seed,
            Some(u64::MAX - 7)
        );
    }

    #[test]
    fn response_round_trips() {
        let mut ok = Response::ok(
            3,
            "rsa",
            1,
            99,
            12.5,
            Value::Object(vec![("keys".into(), Value::Int(5))]),
        );
        ok.trace = Some("00000000deadbeef".into());
        assert_eq!(parse_response(ok.to_json_line().trim()).unwrap(), ok);
        ok.cached = Some(true);
        let line = ok.to_json_line();
        assert!(line.contains("\"cached\":true"));
        assert_eq!(parse_response(line.trim()).unwrap(), ok);

        let shed = Response::failure(4, "rsa", "shed", "queue_full", "queue is full".into());
        assert_eq!(parse_response(shed.to_json_line().trim()).unwrap(), shed);
    }
}
