//! sim-serve: a multi-tenant board-farm campaign server.
//!
//! Turns the one-shot attack library into an online service: a TCP
//! server speaking a newline-delimited JSON protocol fronts a farm of N
//! lazily-constructed [`amperebleed::Platform`]s, multiplexing campaign
//! requests (`characterize` / `fingerprint` / `covert` / `rsa` /
//! `quickstart`, plus `ping` and `shutdown`) across boards.
//!
//! The layers, bottom-up:
//!
//! * [`exec`] — pure verb execution: `result = f(verb, seed, config)`,
//!   the function every determinism claim reduces to.
//! * [`farm`] — N boards, each seeded by
//!   `derive_seed(farm_seed, board_index)`, behind a blocking
//!   checkout/checkin free list.
//! * [`scheduler`] — token-bucket rate limits and max-inflight quotas
//!   per tenant, a bounded queue with 429-style sheds, per-request
//!   deadlines, batching of identical jobs onto one board lock-hold,
//!   and drain-then-stop shutdown.
//! * [`server`] / [`client`] — the TCP front and its blocking client.
//! * [`protocol`] — the wire types shared by both ends.
//!
//! **Determinism contract.** A response's `result` is byte-identical to
//! `exec::execute(verb, seed, config)` run serially on a fresh platform,
//! for the `seed` the response reports — regardless of farm size, pool
//! width, batching, or scheduling order. Unpinned requests adopt the
//! farm default seed at admission (never a placement-dependent one), so
//! the contract covers them too.
//!
//! Everything is instrumented under `serve.*` in the sim-obs metrics
//! registry: admission counters, shed/timeouts, queue depth, batch
//! sizes, request/exec latency histograms, and farm utilisation.
//!
//! **Telemetry plane.** The `stats` control verb answers live over the
//! same TCP connection with the full metrics registry (identical records
//! to `metrics_to_jsonl`, percentiles included), pool and per-tenant
//! counters, and queue state; `{"flight": true}` inlines the
//! flight-recorder rings. Every admitted request is traced: a
//! deterministic trace id minted from `(tenant, seed, request counter)`
//! rides the response's `trace` field, and the span tree (request →
//! batch → board → campaign phases) is reconstructable via
//! [`obs::trace::build_forest`]. Deadline expiries, queue sheds, and
//! panics auto-dump the flight rings to `AMPEREBLEED_FLIGHT_FILE`.

pub mod client;
pub mod exec;
pub mod farm;
pub mod protocol;
pub mod scheduler;
pub mod server;

pub use client::Client;
pub use exec::execute;
pub use protocol::{Request, Response};
pub use scheduler::SchedConfig;
pub use server::{Server, ServerConfig, ServerHandle};
