//! A small blocking client for the farm protocol.
//!
//! Supports both call-and-wait ([`Client::request`]) and pipelining
//! ([`Client::send`] many ids, then [`Client::wait`] each): responses
//! arriving out of order are parked until their id is asked for.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use sim_rt::ser::Value;

use crate::protocol::{self, Request, Response, ANON_TENANT};

/// A connected client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    tenant: String,
    next_id: i64,
    parked: VecDeque<Response>,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            writer,
            reader,
            tenant: ANON_TENANT.to_string(),
            next_id: 1,
            parked: VecDeque::new(),
        })
    }

    /// Sets the tenant name stamped on subsequent requests.
    pub fn set_tenant(&mut self, tenant: impl Into<String>) {
        self.tenant = tenant.into();
    }

    /// Sends one request without waiting; returns its id for
    /// [`Client::wait`]. Use for pipelining.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send(&mut self, verb: &str, seed: Option<u64>, config: Value) -> std::io::Result<i64> {
        self.send_with_deadline(verb, seed, None, config)
    }

    /// [`Client::send`] with a relative deadline in milliseconds.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send_with_deadline(
        &mut self,
        verb: &str,
        seed: Option<u64>,
        deadline_ms: Option<u64>,
        config: Value,
    ) -> std::io::Result<i64> {
        let id = self.next_id;
        self.next_id += 1;
        let mut req = Request::new(id, verb);
        req.tenant = self.tenant.clone();
        req.seed = seed;
        req.deadline_ms = deadline_ms;
        req.config = config;
        self.writer.write_all(req.to_json_line().as_bytes())?;
        Ok(id)
    }

    /// Waits for the response to a previously-sent request id.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` if the server closes first; `InvalidData` on
    /// malformed response lines.
    pub fn wait(&mut self, id: i64) -> std::io::Result<Response> {
        if let Some(resp) = self
            .parked
            .iter()
            .position(|r| r.id == id)
            .and_then(|pos| self.parked.remove(pos))
        {
            return Ok(resp);
        }
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            let resp = protocol::parse_response(line.trim())
                .map_err(|message| std::io::Error::new(std::io::ErrorKind::InvalidData, message))?;
            if resp.id == id {
                return Ok(resp);
            }
            self.parked.push_back(resp);
        }
    }

    /// Sends `verb` and waits for its response.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::send`] and [`Client::wait`] failures.
    pub fn request(
        &mut self,
        verb: &str,
        seed: Option<u64>,
        config: Value,
    ) -> std::io::Result<Response> {
        let id = self.send(verb, seed, config)?;
        self.wait(id)
    }

    /// Queries the live telemetry plane: metrics registry, pool and
    /// tenant counters, queue depth. Pass
    /// `{"flight": true}` as `config` to inline the flight-recorder
    /// rings, or [`Value::Null`] for the plain dump.
    ///
    /// # Errors
    ///
    /// Propagates send/wait failures.
    pub fn stats(&mut self, config: Value) -> std::io::Result<Response> {
        let id = self.send("stats", None, config)?;
        self.wait(id)
    }

    /// Asks the server to drain and stop; returns the shutdown ack with
    /// its drain statistics.
    ///
    /// # Errors
    ///
    /// Propagates send/wait failures.
    pub fn shutdown_server(&mut self) -> std::io::Result<Response> {
        let id = self.send("shutdown", None, Value::Null)?;
        self.wait(id)
    }
}
