//! The TCP front: accept loop, per-connection readers, and the graceful
//! shutdown path.
//!
//! [`Server::run`] blocks inside one [`sim_rt::pool::service_scope`]
//! holding every thread the server owns: the dispatcher and one reader
//! per connection. Responses are written by whichever thread finishes a
//! job, through a mutex over the connection's write half — each response
//! is a single `write_all` of one line, so lines never interleave.
//!
//! Shutdown (a client `shutdown` verb or [`ServerHandle::shutdown`])
//! drains the scheduler, then the accept loop closes both halves of
//! every tracked connection; blocked readers observe EOF and exit, the
//! scope joins, and `run` returns.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use sim_rt::pool::{service_scope, Pool};
use sim_store::{Store, StoreConfig};

use crate::farm::Farm;
use crate::protocol::{self, Response};
use crate::scheduler::{SchedConfig, Scheduler, Sink};

/// Polling period of the non-blocking accept loop.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Everything needed to stand up a server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Board-farm size.
    pub boards: usize,
    /// Farm seed; board `i` runs on `derive_seed(farm_seed, i)`.
    pub farm_seed: u64,
    /// Execution pool width (0 = one worker per CPU).
    pub threads: usize,
    /// Admission/batching knobs.
    pub sched: SchedConfig,
    /// Content-addressed result store: `None` disables memoization
    /// entirely; `Some` with [`StoreConfig::dir`] unset is a hot tier
    /// only; with a dir, results also persist across restarts.
    pub store: Option<StoreConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            boards: 4,
            farm_seed: 1,
            threads: 0,
            sched: SchedConfig::default(),
            store: None,
        }
    }
}

/// A bound (but not yet running) server.
pub struct Server {
    listener: TcpListener,
    scheduler: Arc<Scheduler>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

/// The ctrl-channel: triggers the same drain-then-stop path as the
/// `shutdown` verb, from outside any connection (the SIGTERM-equivalent).
#[derive(Clone)]
pub struct ServerHandle {
    scheduler: Arc<Scheduler>,
}

impl ServerHandle {
    /// Starts a graceful drain; `Server::run` returns once it completes.
    pub fn shutdown(&self) {
        self.scheduler.begin_drain();
    }
}

impl Server {
    /// Binds the listener and assembles the farm, store, and scheduler.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure, or a store directory that cannot be
    /// opened (damaged store *content* self-heals and is not an error).
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        obs::init();
        // Spans feed both the `stats` verb and flight dumps; a server
        // without them is blind, so recording is on for the lifetime of
        // the process.
        obs::trace::set_recording(true);
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let farm = Farm::new(config.farm_seed, config.boards);
        let pool = Pool::new(config.threads);
        let store = match config.store {
            None => None,
            Some(store_cfg) => Some(Arc::new(
                Store::open(store_cfg).map_err(|e| std::io::Error::other(e.to_string()))?,
            )),
        };
        let scheduler = Arc::new(Scheduler::with_store(config.sched, farm, pool, store));
        Ok(Server {
            listener,
            scheduler,
            conns: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// The bound address (read the ephemeral port from here).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown handle usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            scheduler: Arc::clone(&self.scheduler),
        }
    }

    /// Serves until a graceful shutdown completes.
    pub fn run(self) {
        let Server {
            listener,
            scheduler,
            conns,
        } = self;
        service_scope(|svc| {
            let dispatcher_sched = Arc::clone(&scheduler);
            svc.spawn("serve-dispatcher", move || dispatcher_sched.dispatch_loop());

            let mut conn_id = 0u64;
            while !scheduler.stopped() {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        obs::counter!("serve.connections").inc();
                        // Accepted sockets must block: readers park in
                        // read_line until data or shutdown arrives.
                        if stream.set_nonblocking(false).is_err() {
                            continue;
                        }
                        let (read_half, write_half) = match (stream.try_clone(), stream.try_clone())
                        {
                            (Ok(r), Ok(w)) => (r, w),
                            _ => continue,
                        };
                        conns
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push(stream);
                        let sched = Arc::clone(&scheduler);
                        svc.spawn(&format!("serve-conn-{conn_id}"), move || {
                            connection_loop(read_half, write_half, &sched);
                        });
                        conn_id += 1;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => {
                        obs::counter!("serve.accept_errors").inc();
                        std::thread::sleep(ACCEPT_POLL);
                    }
                }
            }

            // Drained: unblock every parked reader so the scope can join.
            for stream in conns
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .iter()
            {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        });
    }
}

/// Reads request lines until EOF, submitting each to the scheduler.
fn connection_loop(read_half: TcpStream, write_half: TcpStream, scheduler: &Scheduler) {
    let writer = Arc::new(Mutex::new(write_half));
    let sink: Sink = Arc::new(move |resp: Response| {
        let line = resp.to_json_line();
        let mut w = writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if w.write_all(line.as_bytes()).is_err() {
            obs::counter!("serve.tx_errors").inc();
        }
    });

    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                match protocol::parse_request(trimmed) {
                    Ok(req) => scheduler.submit(req, Arc::clone(&sink)),
                    Err(message) => {
                        obs::counter!("serve.bad_requests").inc();
                        sink(Response::failure(-1, "", "error", "bad_request", message));
                    }
                }
            }
        }
    }
}
