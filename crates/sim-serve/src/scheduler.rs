//! Admission control and the batching dispatcher.
//!
//! A request passes through three gates at admission (all on the
//! connection thread, so a shed never occupies queue space):
//!
//! 1. **token bucket** per tenant (`rate_per_sec`/`burst`) → `rate_limited`
//! 2. **max-inflight quota** per tenant → `quota_exceeded`
//! 3. **bounded queue** (`queue_cap`) → `queue_full`
//!
//! Admitted jobs wait in the bounded queue until the single dispatcher
//! thread drains a batch, drops expired deadlines (`timeout`), groups the
//! rest by `(verb, seed, config)` — identical capture jobs share one
//! board lock-hold and one execution — and fans the groups out across
//! the farm on the [`sim_rt::pool::Pool`]. Results are duplicated to
//! every request of a group, which is safe precisely because execution
//! is a pure function of the group key (see `exec`).
//!
//! Shutdown (`shutdown` verb or [`Scheduler::begin_drain`]) flips the
//! farm into draining: new work is shed as `shutting_down`, everything
//! already admitted is served, then the shutdown requests themselves are
//! acknowledged with drain statistics and the dispatcher parks.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use sim_rt::pool::Pool;
use sim_rt::ser::Value;
use sim_store::Store;

use crate::exec::{self, ExecError};
use crate::farm::Farm;
use crate::protocol::{Request, Response};

/// Where a finished [`Response`] goes (the connection's write half, or a
/// buffer in tests).
pub type Sink = Arc<dyn Fn(Response) + Send + Sync>;

/// Admission and batching knobs.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Bounded queue length; admissions beyond it shed `queue_full`.
    pub queue_cap: usize,
    /// Max jobs the dispatcher drains per batch.
    pub batch_max: usize,
    /// Token-bucket refill rate per tenant (requests/second).
    pub rate_per_sec: f64,
    /// Token-bucket capacity per tenant (burst size).
    pub burst: f64,
    /// Max admitted-but-unanswered requests per tenant.
    pub max_inflight: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            queue_cap: 256,
            batch_max: 32,
            rate_per_sec: 200.0,
            burst: 50.0,
            max_inflight: 64,
        }
    }
}

struct Job {
    req: Request,
    /// Effective seed, resolved at admission (pinned or farm default) so
    /// the result cannot depend on board placement.
    seed: u64,
    /// Root trace context, minted at admission from
    /// `(tenant, seed, per-tenant request counter)` — deterministic, so
    /// replaying a request stream reproduces every trace id.
    ctx: obs::trace::TraceContext,
    admitted_ns: u64,
    deadline_ns: Option<u64>,
    sink: Sink,
}

struct Tenant {
    tokens: f64,
    last_refill_ns: u64,
    inflight: usize,
    /// Requests that reached this tenant's admission gates.
    requests: u64,
    /// Requests that passed the token/quota gates.
    admitted: u64,
    /// Requests refused by admission control or the drain.
    shed: u64,
    /// Admitted requests whose deadline expired before execution.
    timeouts: u64,
    /// Trace counter feeding [`obs::trace::TraceContext::root`].
    next_trace: u64,
}

impl Tenant {
    fn new(now: u64, burst: f64) -> Tenant {
        Tenant {
            tokens: burst,
            last_refill_ns: now,
            inflight: 0,
            requests: 0,
            admitted: 0,
            shed: 0,
            timeouts: 0,
            next_trace: 0,
        }
    }
}

struct State {
    queue: VecDeque<Job>,
    draining: bool,
    stopped: bool,
    shutdown_jobs: Vec<(i64, Sink)>,
}

/// The scheduler: shared between every connection thread (submissions)
/// and the single dispatcher thread (execution).
pub struct Scheduler {
    cfg: SchedConfig,
    farm: Farm,
    pool: Pool,
    store: Option<Arc<Store>>,
    state: Mutex<State>,
    work: Condvar,
    tenants: Mutex<std::collections::BTreeMap<String, Tenant>>,
    served: AtomicU64,
}

impl Scheduler {
    /// Builds a scheduler over `farm`, executing groups on `pool`.
    pub fn new(cfg: SchedConfig, farm: Farm, pool: Pool) -> Scheduler {
        Scheduler::with_store(cfg, farm, pool, None)
    }

    /// Builds a scheduler backed by a content-addressed result store.
    /// Lookups happen on the connection thread *before* admission
    /// control: a hit answers immediately without consuming a token,
    /// quota slot, queue slot, or board; a miss runs normally and the
    /// computed result is inserted for the next taker.
    pub fn with_store(
        cfg: SchedConfig,
        farm: Farm,
        pool: Pool,
        store: Option<Arc<Store>>,
    ) -> Scheduler {
        Scheduler {
            cfg,
            farm,
            pool,
            store,
            state: Mutex::new(State {
                queue: VecDeque::new(),
                draining: false,
                stopped: false,
                shutdown_jobs: Vec::new(),
            }),
            work: Condvar::new(),
            tenants: Mutex::new(std::collections::BTreeMap::new()),
            served: AtomicU64::new(0),
        }
    }

    /// The farm this scheduler multiplexes.
    pub fn farm(&self) -> &Farm {
        &self.farm
    }

    /// Whether the dispatcher has finished draining and parked.
    pub fn stopped(&self) -> bool {
        self.lock_state().stopped
    }

    /// Starts a drain without a client request (the ctrl-channel half of
    /// shutdown): stop admitting, serve the backlog, park.
    pub fn begin_drain(&self) {
        self.lock_state().draining = true;
        obs::counter!("serve.drains").inc();
        self.work.notify_all();
    }

    /// Admits or sheds one request. Every path eventually calls `sink`
    /// exactly once with this request's response — the zero-lost-response
    /// invariant shutdown relies on.
    pub fn submit(&self, req: Request, sink: Sink) {
        obs::counter!("serve.requests").inc();

        if req.verb == "shutdown" {
            let mut st = self.lock_state();
            st.draining = true;
            st.shutdown_jobs.push((req.id, sink));
            drop(st);
            obs::counter!("serve.drains").inc();
            self.work.notify_all();
            return;
        }
        if req.verb == "stats" {
            obs::counter!("serve.stats.requests").inc();
            let resp = self.stats_response(&req);
            self.respond_unserved(sink, resp);
            return;
        }
        if !exec::known_verb(&req.verb) {
            self.respond_unserved(
                sink,
                Response::failure(
                    req.id,
                    &req.verb,
                    "error",
                    "unknown_verb",
                    format!("unknown verb `{}`", req.verb),
                ),
            );
            return;
        }
        if self.lock_state().draining {
            self.shed(&req, sink, "shutting_down", "server is draining");
            return;
        }

        let seed = req.seed.unwrap_or_else(|| self.farm.default_seed());
        // Content-addressed short-circuit: a stored result answers on
        // the connection thread, before the admission gates — replayed
        // campaigns must not spend tokens, quota, queue slots, or
        // boards on work the store already holds.
        if let Some(resp) = self.store_lookup(&req, seed) {
            self.respond_unserved(sink, resp);
            return;
        }

        let now = obs::clock::monotonic_ns();
        let ctx = {
            let mut tenants = self
                .tenants
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let tenant = tenants
                .entry(req.tenant.clone())
                .or_insert_with(|| Tenant::new(now, self.cfg.burst));
            tenant.requests += 1;
            let dt_s = now.saturating_sub(tenant.last_refill_ns) as f64 / 1e9;
            tenant.tokens = (tenant.tokens + dt_s * self.cfg.rate_per_sec).min(self.cfg.burst);
            tenant.last_refill_ns = now;
            if tenant.tokens < 1.0 {
                drop(tenants);
                self.shed(&req, sink, "rate_limited", "tenant rate limit exceeded");
                return;
            }
            if tenant.inflight >= self.cfg.max_inflight {
                drop(tenants);
                self.shed(
                    &req,
                    sink,
                    "quota_exceeded",
                    "tenant max-inflight quota reached",
                );
                return;
            }
            tenant.tokens -= 1.0;
            tenant.inflight += 1;
            tenant.admitted += 1;
            let ctx = obs::trace::TraceContext::root(&req.tenant, seed, tenant.next_trace);
            tenant.next_trace += 1;
            ctx
        };

        let job = Job {
            seed,
            ctx,
            deadline_ns: req.deadline_ms.map(|ms| now + ms.saturating_mul(1_000_000)),
            admitted_ns: now,
            sink,
            req,
        };
        {
            let mut st = self.lock_state();
            if st.draining {
                let (req, sink) = (job.req, job.sink);
                drop(st);
                self.release_tenant(&req.tenant);
                self.shed(&req, sink, "shutting_down", "server is draining");
                return;
            }
            if st.queue.len() >= self.cfg.queue_cap {
                let (req, sink) = (job.req, job.sink);
                drop(st);
                self.release_tenant(&req.tenant);
                self.shed(&req, sink, "queue_full", "request queue is full");
                return;
            }
            st.queue.push_back(job);
            obs::gauge!("serve.queue.depth").set(st.queue.len() as f64);
        }
        obs::counter!("serve.admitted").inc();
        self.work.notify_all();
    }

    /// Runs the dispatcher until a drain completes. Call from a dedicated
    /// service thread (`sim_rt::pool::service_scope`).
    pub fn dispatch_loop(&self) {
        loop {
            let batch: Vec<Job> = {
                let mut st = self.lock_state();
                loop {
                    if !st.queue.is_empty() {
                        break;
                    }
                    if st.draining {
                        let waiters = std::mem::take(&mut st.shutdown_jobs);
                        st.stopped = true;
                        drop(st);
                        self.ack_shutdown(waiters);
                        self.work.notify_all();
                        return;
                    }
                    st = self
                        .work
                        .wait(st)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                let n = st.queue.len().min(self.cfg.batch_max);
                let batch = st.queue.drain(..n).collect();
                obs::gauge!("serve.queue.depth").set(st.queue.len() as f64);
                batch
            };
            self.process_batch(batch);
        }
    }

    fn process_batch(&self, batch: Vec<Job>) {
        obs::histogram!("serve.batch.size").observe(batch.len() as u64);
        let now = obs::clock::monotonic_ns();

        // Expired deadlines time out without ever touching a board.
        let (live, expired): (Vec<Job>, Vec<Job>) = batch
            .into_iter()
            .partition(|job| job.deadline_ns.is_none_or(|d| d > now));
        let mut dumped = false;
        for job in expired {
            obs::counter!("serve.timeouts").inc();
            {
                let mut tenants = self
                    .tenants
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if let Some(t) = tenants.get_mut(&job.req.tenant) {
                    t.timeouts += 1;
                }
            }
            obs::flight::record(
                "timeout",
                job.ctx.trace_id,
                job.ctx.span_id,
                job.req.id,
                0,
                "deadline_exceeded",
            );
            // One dump per batch is enough context; a mass-expiry must
            // not write the same rings dozens of times.
            if !dumped {
                obs::flight::auto_dump("deadline_exceeded");
                dumped = true;
            }
            let mut resp = Response::failure(
                job.req.id,
                &job.req.verb,
                "timeout",
                "deadline_exceeded",
                "deadline expired before a board was available".into(),
            );
            resp.trace = Some(obs::trace::hex(job.ctx.trace_id));
            obs::trace::record_root(job.ctx, "serve", "request", job.admitted_ns, now);
            self.respond(&job, resp);
        }
        if live.is_empty() {
            return;
        }

        // Batch compatible jobs: one execution per distinct
        // (verb, seed, config) key, results fanned out to every taker.
        let mut groups: Vec<(String, Vec<Job>)> = Vec::new();
        for job in live {
            let key = format!(
                "{}\u{1f}{}\u{1f}{}",
                job.req.verb,
                job.seed,
                job.req.config.to_json()
            );
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, jobs)) => jobs.push(job),
                None => groups.push((key, vec![job])),
            }
        }
        let jobs_total: usize = groups.iter().map(|(_, jobs)| jobs.len()).sum();
        obs::counter!("serve.batch.groups").add(groups.len() as u64);
        obs::counter!("serve.batch.deduped").add((jobs_total - groups.len()) as u64);

        let outcomes = self
            .pool
            .par_map(&groups, |_, (_, jobs)| self.run_group(jobs));

        let done_ns = obs::clock::monotonic_ns();
        for ((_, jobs), (board, outcome)) in groups.iter().zip(&outcomes) {
            for job in jobs {
                let elapsed_ms = done_ns.saturating_sub(job.admitted_ns) as f64 / 1e6;
                obs::histogram!("serve.request.latency_ns")
                    .observe(done_ns.saturating_sub(job.admitted_ns));
                let mut resp = match outcome {
                    Ok(value) => {
                        obs::counter!("serve.responses.ok").inc();
                        Response::ok(
                            job.req.id,
                            &job.req.verb,
                            *board as u64,
                            job.seed,
                            elapsed_ms,
                            value.clone(),
                        )
                    }
                    Err(e) => {
                        obs::counter!("serve.responses.error").inc();
                        Response::failure(
                            job.req.id,
                            &job.req.verb,
                            "error",
                            e.kind,
                            e.message.clone(),
                        )
                    }
                };
                resp.trace = Some(obs::trace::hex(job.ctx.trace_id));
                // The request root spans admission through response, so
                // it is recorded here rather than as a lexical scope.
                obs::trace::record_root(job.ctx, "serve", "request", job.admitted_ns, done_ns);
                self.respond(job, resp);
            }
        }
        obs::record_pool_stats("serve.pool", &self.pool.stats());
    }

    /// Executes one group representative on a checked-out board, under
    /// the representative's trace: a `batch` span linking every member
    /// trace, a `board` span noting the board id, and the `exec` span
    /// tree grown by the verb itself.
    fn run_group(&self, jobs: &[Job]) -> (usize, Result<Value, ExecError>) {
        let Some(job) = jobs.first() else {
            return (0, Err(ExecError::internal("empty batch group")));
        };
        obs::trace::scoped(job.ctx, || {
            let mut batch_span = obs::trace::span("serve.sched", "batch");
            for member in jobs {
                batch_span.link(member.ctx.trace_id);
            }
            let board = self.farm.checkout(job.seed);
            let mut board_span = obs::trace::span("serve.farm", "board");
            board_span.note("board", board.id as i64);
            let t0 = obs::clock::monotonic_ns();
            let verb = job.req.verb.as_str();
            let result = if exec::uses_board_platform(verb) && board.seed == job.seed {
                board
                    .image()
                    .and_then(|p| exec::execute_on(&p, verb, job.seed, &job.req.config))
            } else {
                exec::execute(verb, job.seed, &job.req.config)
            };
            obs::histogram!("serve.exec.latency_ns").observe(obs::clock::monotonic_ns() - t0);
            let id = board.id;
            board_span.close();
            batch_span.close();
            self.farm.checkin(board);
            // Feed the store while still inside the group's trace scope
            // so the `store/insert` span lands in this request's tree.
            if let (Some(store), Ok(value)) = (self.store.as_deref(), &result) {
                let key = Store::key(verb, job.seed, &job.req.config);
                store.insert(&key, verb, job.seed, &value.to_json());
            }
            (id, result)
        })
    }

    /// Answers a request from the result store when one is configured
    /// and warm. Runs on the connection thread before admission: a hit
    /// never consumes a token, quota slot, queue slot, or board. The
    /// response is marked `cached: true` — delivery metadata, like
    /// `board`; the `result` bytes are identical to a fresh execution
    /// under the determinism contract, which is what makes serving from
    /// the store sound at all.
    fn store_lookup(&self, req: &Request, seed: u64) -> Option<Response> {
        let store = self.store.as_deref()?;
        let t0 = obs::clock::monotonic_ns();
        let key = Store::key(&req.verb, seed, &req.config);
        let hit = store.get(&key);
        obs::histogram!("store.lookup.ns").observe(obs::clock::monotonic_ns().saturating_sub(t0));
        let json = hit?;
        let value = match sim_rt::json::parse(&json) {
            Ok(value) => value,
            Err(_) => {
                // A record that no longer parses is damage, not a reason
                // to fail the request: fall through to a real execution.
                obs::counter!("store.decode_errors").inc();
                return None;
            }
        };
        // Hits still mint a deterministic trace root (and count toward
        // the tenant's request total) so replay traffic stays visible in
        // telemetry. Misses leave the tenant untouched here — the normal
        // admission path below mints exactly the trace it would have
        // minted with no store configured.
        let ctx = {
            let mut tenants = self
                .tenants
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let tenant = tenants
                .entry(req.tenant.clone())
                .or_insert_with(|| Tenant::new(t0, self.cfg.burst));
            tenant.requests += 1;
            let ctx = obs::trace::TraceContext::root(&req.tenant, seed, tenant.next_trace);
            tenant.next_trace += 1;
            ctx
        };
        let done = obs::clock::monotonic_ns();
        obs::trace::record_root(ctx, "serve", "store_hit", t0, done);
        Some(Response {
            id: req.id,
            status: "ok".into(),
            verb: req.verb.clone(),
            board: None,
            seed: Some(seed),
            elapsed_ms: Some(done.saturating_sub(t0) as f64 / 1e6),
            result: Some(value),
            error_kind: None,
            error: None,
            trace: Some(obs::trace::hex(ctx.trace_id)),
            cached: Some(true),
        })
    }

    /// Sends a response for an admitted job and releases its quota slot.
    fn respond(&self, job: &Job, resp: Response) {
        (job.sink)(resp);
        self.served.fetch_add(1, Ordering::Relaxed);
        self.release_tenant(&job.req.tenant);
    }

    /// Sends a response for a request that was never admitted.
    fn respond_unserved(&self, sink: Sink, resp: Response) {
        obs::metrics::counter(format!("serve.responses.{}", resp.status)).inc();
        sink(resp);
        self.served.fetch_add(1, Ordering::Relaxed);
    }

    fn shed(&self, req: &Request, sink: Sink, kind: &'static str, message: &str) {
        obs::metrics::counter(format!("serve.shed.{kind}")).inc();
        {
            let mut tenants = self
                .tenants
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            tenants
                .entry(req.tenant.clone())
                .or_insert_with(|| Tenant::new(obs::clock::monotonic_ns(), self.cfg.burst))
                .shed += 1;
        }
        obs::flight::record("shed", 0, 0, req.id, 0, kind);
        // Queue exhaustion is the one shed that signals the *server* is
        // behind rather than the tenant misbehaving; snapshot the rings.
        if kind == "queue_full" {
            obs::flight::auto_dump("queue_full");
        }
        sink(Response::failure(
            req.id,
            &req.verb,
            "shed",
            kind,
            message.into(),
        ));
        self.served.fetch_add(1, Ordering::Relaxed);
    }

    fn ack_shutdown(&self, waiters: Vec<(i64, Sink)>) {
        let served = self.served.load(Ordering::Relaxed);
        for (id, sink) in waiters {
            let result = Value::Object(vec![
                ("drained".into(), Value::Bool(true)),
                ("served".into(), Value::Int(served as i64)),
                ("boards".into(), Value::Int(self.farm.boards() as i64)),
            ]);
            sink(Response {
                id,
                status: "ok".into(),
                verb: "shutdown".into(),
                board: None,
                seed: None,
                elapsed_ms: None,
                result: Some(result),
                error_kind: None,
                error: None,
                trace: None,
                cached: None,
            });
        }
    }

    /// Answers the `stats` control verb: a live dump of the metrics
    /// registry (same records as `metrics_to_jsonl`, so percentiles match
    /// the export byte-for-byte), pool counters, per-tenant admission
    /// breakdowns, and queue state. `{"flight": true}` in the request
    /// config additionally inlines the flight-recorder rings as JSONL.
    fn stats_response(&self, req: &Request) -> Response {
        let mut want_flight = false;
        match &req.config {
            Value::Null => {}
            Value::Object(fields) => {
                for (key, value) in fields {
                    match (key.as_str(), value) {
                        ("flight", Value::Bool(b)) => want_flight = *b,
                        ("flight", _) => {
                            return Response::failure(
                                req.id,
                                "stats",
                                "error",
                                "bad_config",
                                "`flight` must be a bool".into(),
                            );
                        }
                        _ => {
                            return Response::failure(
                                req.id,
                                "stats",
                                "error",
                                "bad_config",
                                format!("unknown stats option `{key}`"),
                            );
                        }
                    }
                }
            }
            _ => {
                return Response::failure(
                    req.id,
                    "stats",
                    "error",
                    "bad_config",
                    "stats config must be an object".into(),
                );
            }
        }

        obs::record_pool_stats("serve.pool", &self.pool.stats());
        let snap = obs::metrics::snapshot();
        let metrics: Vec<Value> = snap
            .to_records()
            .into_iter()
            .map(|r| Value::Object(r.into_fields()))
            .collect();

        let pool_stats = self.pool.stats();
        let pool = Value::Object(vec![
            ("threads".into(), Value::Int(self.pool.threads() as i64)),
            (
                "jobs_completed".into(),
                Value::Int(pool_stats.jobs_completed as i64),
            ),
            (
                "jobs_stolen".into(),
                Value::Int(pool_stats.jobs_stolen as i64),
            ),
            (
                "jobs_retried".into(),
                Value::Int(pool_stats.jobs_retried as i64),
            ),
            ("maps_run".into(), Value::Int(pool_stats.maps_run as i64)),
            (
                "busy_nanos".into(),
                Value::Int(pool_stats.busy_nanos as i64),
            ),
        ]);

        let tenants: Vec<Value> = {
            let tenants = self
                .tenants
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            tenants
                .iter()
                .map(|(name, t)| {
                    Value::Object(vec![
                        ("tenant".into(), Value::Str(name.clone())),
                        ("requests".into(), Value::Int(t.requests as i64)),
                        ("admitted".into(), Value::Int(t.admitted as i64)),
                        ("inflight".into(), Value::Int(t.inflight as i64)),
                        ("shed".into(), Value::Int(t.shed as i64)),
                        ("timeouts".into(), Value::Int(t.timeouts as i64)),
                    ])
                })
                .collect()
        };

        let (queue_depth, draining) = {
            let st = self.lock_state();
            (st.queue.len(), st.draining)
        };

        let store = match &self.store {
            None => Value::Object(vec![("enabled".into(), Value::Bool(false))]),
            Some(store) => {
                let mut fields = vec![
                    ("enabled".into(), Value::Bool(true)),
                    ("persistent".into(), Value::Bool(store.persistent())),
                ];
                if let Value::Object(stats) = store.stats().to_value() {
                    fields.extend(stats);
                }
                Value::Object(fields)
            }
        };

        let mut fields = vec![
            (
                "served".into(),
                Value::Int(self.served.load(Ordering::Relaxed) as i64),
            ),
            ("boards".into(), Value::Int(self.farm.boards() as i64)),
            ("queue_depth".into(), Value::Int(queue_depth as i64)),
            ("draining".into(), Value::Bool(draining)),
            ("pool".into(), pool),
            ("store".into(), store),
            ("tenants".into(), Value::Array(tenants)),
            ("metrics".into(), Value::Array(metrics)),
        ];
        if want_flight {
            fields.push(("flight".into(), Value::Str(obs::flight::dump_jsonl())));
        }

        Response {
            id: req.id,
            status: "ok".into(),
            verb: "stats".into(),
            board: None,
            seed: None,
            elapsed_ms: None,
            result: Some(Value::Object(fields)),
            error_kind: None,
            error: None,
            trace: None,
            cached: None,
        }
    }

    fn release_tenant(&self, tenant: &str) {
        let mut tenants = self
            .tenants
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(t) = tenants.get_mut(tenant) {
            t.inflight = t.inflight.saturating_sub(1);
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_sink() -> (Sink, Arc<Mutex<Vec<Response>>>) {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink_seen = Arc::clone(&seen);
        let sink: Sink = Arc::new(move |resp| {
            sink_seen
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(resp);
        });
        (sink, seen)
    }

    fn sched(cfg: SchedConfig) -> Scheduler {
        Scheduler::new(cfg, Farm::new(5, 1), Pool::serial())
    }

    fn ping(id: i64) -> Request {
        Request::new(id, "ping")
    }

    #[test]
    fn token_bucket_sheds_after_burst() {
        let s = sched(SchedConfig {
            burst: 2.0,
            rate_per_sec: 0.0,
            ..SchedConfig::default()
        });
        let (sink, seen) = collect_sink();
        for id in 0..4 {
            s.submit(ping(id), Arc::clone(&sink));
        }
        let seen = seen.lock().unwrap();
        // The first two were admitted (queued, no dispatcher running);
        // the rest shed immediately with the typed error.
        assert_eq!(seen.len(), 2);
        for resp in seen.iter() {
            assert_eq!(resp.status, "shed");
            assert_eq!(resp.error_kind.as_deref(), Some("rate_limited"));
        }
    }

    #[test]
    fn bounded_queue_sheds_queue_full() {
        let s = sched(SchedConfig {
            queue_cap: 3,
            burst: 100.0,
            ..SchedConfig::default()
        });
        let (sink, seen) = collect_sink();
        for id in 0..5 {
            s.submit(ping(id), Arc::clone(&sink));
        }
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 2, "two requests beyond queue_cap");
        for resp in seen.iter() {
            assert_eq!(resp.status, "shed");
            assert_eq!(resp.error_kind.as_deref(), Some("queue_full"));
        }
    }

    #[test]
    fn inflight_quota_sheds_quota_exceeded() {
        let s = sched(SchedConfig {
            max_inflight: 1,
            burst: 100.0,
            ..SchedConfig::default()
        });
        let (sink, seen) = collect_sink();
        s.submit(ping(0), Arc::clone(&sink));
        s.submit(ping(1), Arc::clone(&sink));
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].error_kind.as_deref(), Some("quota_exceeded"));
    }

    #[test]
    fn unknown_verb_answers_immediately() {
        let s = sched(SchedConfig::default());
        let (sink, seen) = collect_sink();
        s.submit(Request::new(9, "frobnicate"), sink);
        let seen = seen.lock().unwrap();
        assert_eq!(seen[0].status, "error");
        assert_eq!(seen[0].error_kind.as_deref(), Some("unknown_verb"));
    }

    #[test]
    fn drain_serves_backlog_then_acks_shutdown() {
        let s = sched(SchedConfig::default());
        let (sink, seen) = collect_sink();
        s.submit(ping(1), Arc::clone(&sink));
        s.submit(ping(2), Arc::clone(&sink));
        s.submit(Request::new(3, "shutdown"), Arc::clone(&sink));
        // Post-drain submissions shed.
        s.submit(ping(4), Arc::clone(&sink));
        s.dispatch_loop();
        assert!(s.stopped());
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 4, "zero lost responses");
        let by_id = |id: i64| seen.iter().find(|r| r.id == id).unwrap();
        assert!(by_id(1).is_ok());
        assert!(by_id(2).is_ok());
        assert_eq!(by_id(4).error_kind.as_deref(), Some("shutting_down"));
        let ack = by_id(3);
        assert!(ack.is_ok());
        let result = ack.result.as_ref().unwrap();
        assert_eq!(result.get("drained").unwrap().as_bool(), Some(true));
        assert_eq!(result.get("served").unwrap().as_i64(), Some(3));
    }

    #[test]
    fn expired_deadline_times_out_and_frees_the_board() {
        let s = sched(SchedConfig::default());
        let (sink, seen) = collect_sink();
        let mut doomed = ping(1);
        doomed.deadline_ms = Some(0);
        s.submit(doomed, Arc::clone(&sink));
        s.submit(ping(2), Arc::clone(&sink));
        s.submit(Request::new(3, "shutdown"), Arc::clone(&sink));
        s.dispatch_loop();
        let seen = seen.lock().unwrap();
        let by_id = |id: i64| seen.iter().find(|r| r.id == id).unwrap();
        assert_eq!(by_id(1).status, "timeout");
        assert_eq!(by_id(1).error_kind.as_deref(), Some("deadline_exceeded"));
        // The board kept serving afterwards: request 2 completed.
        assert!(by_id(2).is_ok());
    }

    #[test]
    fn stats_verb_percentiles_match_jsonl_export() {
        let s = sched(SchedConfig::default());
        let hist = obs::metrics::histogram("test.stats.frozen_hist".to_string());
        hist.observe(100);
        hist.observe(250);
        hist.observe(10_000);
        let (sink, seen) = collect_sink();
        let mut req = Request::new(50, "stats");
        req.config = Value::Object(vec![("flight".into(), Value::Bool(true))]);
        s.submit(req, sink);
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 1);
        let resp = &seen[0];
        assert!(resp.is_ok(), "stats answers ok: {:?}", resp.error);
        let result = resp.result.as_ref().unwrap();
        assert!(result.get("flight").is_some(), "flight dump inlined");
        let metrics = match result.get("metrics").unwrap() {
            Value::Array(rows) => rows,
            other => panic!("metrics must be an array, got {other:?}"),
        };
        let row = metrics
            .iter()
            .find(|m| m.get("name").and_then(Value::as_str) == Some("test.stats.frozen_hist"))
            .expect("histogram present in stats dump");
        // The stats row must be byte-identical to the JSONL export line:
        // same schema, same percentile math, same float formatting.
        let jsonl = obs::metrics::snapshot().to_jsonl();
        let line = jsonl
            .lines()
            .find(|l| l.contains("\"test.stats.frozen_hist\""))
            .expect("histogram present in jsonl export");
        assert_eq!(row.to_json(), line);
    }

    #[test]
    fn served_responses_carry_a_trace_id() {
        let run = || {
            let s = sched(SchedConfig::default());
            let (sink, seen) = collect_sink();
            s.submit(ping(1), sink);
            s.begin_drain();
            s.dispatch_loop();
            let seen = seen.lock().unwrap();
            let resp = seen.iter().find(|r| r.id == 1).unwrap().clone();
            resp.trace.clone().expect("served response carries a trace")
        };
        let first = run();
        assert_eq!(first.len(), 16, "trace id is 16 hex chars: {first:?}");
        assert!(first.chars().all(|c| c.is_ascii_hexdigit()));
        // Deterministic minting: a fresh scheduler replaying the same
        // request stream reproduces the same trace id.
        assert_eq!(first, run());
    }

    #[test]
    fn identical_requests_batch_onto_one_execution() {
        let s = sched(SchedConfig::default());
        let before = obs::metrics::counter("serve.batch.deduped".to_string()).get();
        let (sink, seen) = collect_sink();
        for id in 0..3 {
            let mut req = Request::new(id, "ping");
            req.seed = Some(77);
            s.submit(req, Arc::clone(&sink));
        }
        s.begin_drain();
        s.dispatch_loop();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.iter().filter(|r| r.is_ok()).count(), 3);
        let after = obs::metrics::counter("serve.batch.deduped".to_string()).get();
        assert!(
            after >= before + 2,
            "three identical jobs dedup to one execution"
        );
    }
}
