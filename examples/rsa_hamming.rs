//! RSA Hamming-weight recovery (the Figure 4 case study).
//!
//! An unprivileged attacker profiles the FPGA current while an RSA-1024
//! circuit (key sealed in the encrypted bitstream) repeatedly encrypts.
//! Mean current is affine in the key's Hamming weight; the 25 mW power
//! channel collapses adjacent weights while the 1 mA current channel
//! separates all of them.
//!
//! Run with: `cargo run --release --example rsa_hamming`

use amperebleed::rsa_attack::{self, RsaAttackConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = RsaAttackConfig {
        samples_per_key: 20_000,
        ..RsaAttackConfig::default()
    };
    eprintln!(
        "profiling {} keys x {} samples at {} Hz ...",
        config.hamming_weights.len(),
        config.samples_per_key,
        config.sample_rate_hz
    );
    let report = rsa_attack::run(&config)?;

    println!(
        "{:>6} {:>12} {:>9} {:>12} {:>10} {:>10}",
        "HW", "I mean(mA)", "I std", "P mean(mW)", "I group", "P group"
    );
    for (i, obs) in report.observations.iter().enumerate() {
        println!(
            "{:>6} {:>12.2} {:>9.2} {:>12.2} {:>10} {:>10}",
            obs.hamming_weight,
            obs.current_ma.mean,
            obs.current_ma.std_dev,
            obs.power_mw.mean,
            report.current_separability.cluster_of[i],
            report.power_separability.cluster_of[i],
        );
    }
    println!(
        "\ncurrent channel distinguishes {} / {} Hamming-weight groups",
        report.current_separability.distinguishable,
        report.observations.len()
    );
    println!(
        "power   channel distinguishes {} / {} (paper: ~5)",
        report.power_separability.distinguishable,
        report.observations.len()
    );
    println!(
        "\nKnowing the Hamming weight shrinks brute-force key search and\n\
         seeds statistical key-recovery attacks (Sarkar & Maitra, CHES'12)."
    );
    Ok(())
}
