//! Section V mitigation demo: restricting INA226 hwmon nodes to root
//! kills the unprivileged attack but also breaks benign unprivileged
//! monitoring.
//!
//! Run with: `cargo run --example mitigation`

use amperebleed::mitigation::{restrict_all_sensors, unrestrict_all_sensors};
use amperebleed::{Channel, CurrentSampler, Platform};
use fpga_fabric::virus::VirusConfig;
use zynq_soc::{PowerDomain, SimTime};

fn try_attack(platform: &Platform, label: &str) {
    let sampler = CurrentSampler::unprivileged(platform);
    match sampler.capture(
        PowerDomain::FpgaLogic,
        Channel::Current,
        SimTime::from_ms(40),
        1_000.0,
        100,
    ) {
        Ok(trace) => println!(
            "[{label}] unprivileged attack SUCCEEDS: mean FPGA current {:.0} mA",
            trace.mean()
        ),
        Err(e) => println!("[{label}] unprivileged attack FAILS: {e}"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut platform = Platform::zcu102(99);
    let virus = platform.deploy_virus(VirusConfig::default())?;
    virus.activate_groups(120).unwrap();

    try_attack(&platform, "default ");

    println!("\napplying mitigation: chmod 600 on every INA226 node ...");
    restrict_all_sensors(&mut platform)?;
    try_attack(&platform, "hardened");

    // The cost: a benign unprivileged power monitor breaks too.
    let benign = CurrentSampler::unprivileged(&platform);
    match benign.read_once(
        PowerDomain::FullPowerCpu,
        Channel::Power,
        SimTime::from_ms(40),
    ) {
        Ok(_) => println!("benign unprivileged power monitor still works"),
        Err(e) => println!("benign unprivileged power monitor ALSO breaks: {e}"),
    }

    // Root monitoring is unaffected.
    let root = CurrentSampler::privileged(&platform);
    let trace = root.capture(
        PowerDomain::FpgaLogic,
        Channel::Current,
        SimTime::from_ms(40),
        1_000.0,
        100,
    )?;
    println!("root monitoring unaffected: mean {:.0} mA", trace.mean());

    println!("\nrolling the policy back (legacy image without the fix) ...");
    unrestrict_all_sensors(&mut platform);
    try_attack(&platform, "legacy  ");
    Ok(())
}
