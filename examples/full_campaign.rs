//! The complete AmpereBleed campaign in one run: characterization,
//! fingerprinting, RSA Hamming-weight recovery, the covert channel, the
//! TEE and workload-reconnaissance extensions, and the mitigation check.
//!
//! Run with: `cargo run --release --example full_campaign`
//!
//! Pass `--profile` to append the observability profile: per-phase
//! wall-clock timings and the frozen metrics registry (sensor-read
//! counters, conversion telemetry, latency percentiles). Set
//! `AMPEREBLEED_LOG=debug` for live stage/capture events and
//! `AMPEREBLEED_TRACE_FILE=trace.jsonl` for a replayable JSONL trace.

use amperebleed::campaign::{run, CampaignConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = std::env::args().any(|a| a == "--profile");
    eprintln!("running the full campaign (six stages) ...");
    let report = run(&CampaignConfig::default())?;
    print!("{}", report.summary());

    println!("\nfingerprinting grid (Figure 3 model set):");
    for (sc, cells) in &report.fingerprint_grid.rows {
        let cell = cells.last().expect("one duration evaluated");
        println!(
            "  {:<24} top-1 {:.3}  top-5 {:.3}",
            sc.to_string(),
            cell.top1,
            cell.top5
        );
    }

    println!("\nadjacent RSA group confidence (Welch t, threshold 4.5):");
    for (i, t) in report.rsa.adjacent_current_t().iter().enumerate() {
        let w0 = report.rsa.observations[i].hamming_weight;
        let w1 = report.rsa.observations[i + 1].hamming_weight;
        println!("  HW {w0:>4} vs {w1:>4}: t = {t:.1}");
    }

    if profile {
        println!("\n== observability profile ==");
        print!("{}", report.profile_table());
    }
    Ok(())
}
