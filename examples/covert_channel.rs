//! Covert channel across the FPGA/CPU isolation boundary.
//!
//! A colluding circuit in the fabric modulates its switching activity
//! (on-off keying); an unprivileged ARM process demodulates the payload
//! from the hwmon FPGA-current node. No shared memory, no crafted
//! receiver circuit, no privileges.
//!
//! Run with: `cargo run --release --example covert_channel`

use amperebleed::covert::{bit_error_rate, receive};
use amperebleed::mitigation::restrict_all_sensors;
use amperebleed::Platform;
use fpga_fabric::covert::CovertConfig;
use zynq_soc::SimTime;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let payload = b"exfiltrated-key";
    let config = CovertConfig::default();

    let mut platform = Platform::zcu102(0xC0FE);
    let tx = platform.deploy_covert_transmitter(config, payload)?;
    println!(
        "transmitter deployed: {} bits/frame at {:.1} bit/s raw",
        tx.frame_bits(),
        config.raw_bandwidth_bps()
    );

    let rx = receive(&platform, &config, payload.len(), SimTime::from_ms(537))?;
    println!(
        "received: {:?} (sync quality {:.0}%, {:.2} payload bit/s)",
        String::from_utf8_lossy(&rx.payload),
        rx.sync_quality * 100.0,
        rx.payload_bandwidth_bps
    );
    println!(
        "bit error rate: {:.4}",
        bit_error_rate(payload, &rx.payload)
    );

    // Faster signalling degrades: one sensor update per bit leaves no
    // voting margin.
    let fast = CovertConfig {
        bit_period: SimTime::from_ms(35),
        ..config
    };
    let mut fast_platform = Platform::zcu102(0xC0FF);
    fast_platform.deploy_covert_transmitter(fast, payload)?;
    let rx_fast = receive(&fast_platform, &fast, payload.len(), SimTime::from_ms(537))?;
    println!(
        "\nat 1 bit per sensor update ({:.1} bit/s): ber {:.4}",
        fast.raw_bandwidth_bps(),
        bit_error_rate(payload, &rx_fast.payload)
    );

    // The Section V mitigation closes this channel too.
    restrict_all_sensors(&mut platform)?;
    match receive(&platform, &config, payload.len(), SimTime::from_secs(60)) {
        Err(e) => println!("\nafter mitigation: receiver fails with '{e}'"),
        Ok(_) => println!("\nafter mitigation: unexpectedly still received?"),
    }
    Ok(())
}
