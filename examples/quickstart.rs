//! Quickstart: spy on FPGA activity from an unprivileged process.
//!
//! Builds the simulated ZCU102, deploys a victim workload in the fabric,
//! and shows that an unprivileged hwmon reader sees every change in the
//! victim's activity through the FPGA current channel — no crafted
//! circuit, no fabric access, no root.
//!
//! Run with: `cargo run --example quickstart`

use amperebleed::{CurrentSampler, Platform};
use fpga_fabric::virus::VirusConfig;
use zynq_soc::{PowerDomain, SimTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's experimental machine: a ZCU102 with four sensitive
    // INA226 sensors behind /sys/class/hwmon.
    let mut platform = Platform::zcu102(2025);
    println!("platform: {:?}", platform.board().name);
    println!("hwmon nodes:");
    for path in platform.hwmon().list() {
        println!("  {path}");
    }

    // Victim: a bitstream whose activity we will spy on.
    let virus = platform.deploy_virus(VirusConfig::default())?;
    println!(
        "\nvictim deployed: {} instances in {} groups",
        virus.total_instances(),
        virus.config().groups
    );

    // Attacker: an unprivileged process polling curr1_input.
    let sampler = CurrentSampler::unprivileged(&platform);
    println!(
        "\n{:>8} {:>12} {:>12} {:>14}",
        "groups", "current(mA)", "volt(mV)", "power(mW)"
    );
    let mut cursor = SimTime::from_ms(40);
    for groups in [0u32, 20, 40, 80, 120, 160] {
        virus.activate_groups(groups).unwrap();
        cursor += SimTime::from_ms(70); // let the 35 ms sensor update
        let [current, voltage, power] =
            sampler.capture_all_channels(PowerDomain::FpgaLogic, cursor, 200.0, 50)?;
        println!(
            "{:>8} {:>12.0} {:>12.1} {:>14.1}",
            groups,
            current.mean(),
            voltage.mean(),
            power.mean() / 1_000.0
        );
        cursor += SimTime::from_ms(250);
    }

    println!(
        "\nThe current column swings by amps while the stabilized voltage\n\
         column barely moves — that asymmetry is the AmpereBleed channel."
    );
    Ok(())
}
