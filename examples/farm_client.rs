//! Minimal board-farm client: send one campaign request to a running
//! `serve` instance and print the response.
//!
//! ```text
//! cargo run --example farm_client -- 127.0.0.1:4650 \
//!     [--verb quickstart] [--seed 42] [--tenant alice] \
//!     [--config '{"key": "value"}'] [--deadline-ms 500] \
//!     [--stats] [--pretty] [--shutdown]
//! ```
//!
//! `--stats` queries the live telemetry plane instead of running a verb
//! (pass `--config '{"flight": true}'` to inline the flight-recorder
//! rings); `--pretty` pretty-prints the result JSON. With `--shutdown`
//! the client also asks the server to drain and exit after its request
//! completes (this is what the CI smoke gate does).

use sim_rt::ser::Value;
use sim_serve::Client;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = None;
    let mut verb = "quickstart".to_string();
    let mut seed = None;
    let mut tenant = None;
    let mut config_json: Option<String> = None;
    let mut deadline_ms = None;
    let mut stats = false;
    let mut pretty = false;
    let mut shutdown = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--verb" => verb = it.next().expect("--verb needs a value").clone(),
            "--seed" => {
                seed = Some(
                    it.next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("--seed must be an integer"),
                );
            }
            "--tenant" => tenant = Some(it.next().expect("--tenant needs a value").clone()),
            "--config" => config_json = Some(it.next().expect("--config needs a value").clone()),
            "--deadline-ms" => {
                deadline_ms = Some(
                    it.next()
                        .expect("--deadline-ms needs a value")
                        .parse()
                        .expect("--deadline-ms must be an integer"),
                );
            }
            "--stats" => stats = true,
            "--pretty" => pretty = true,
            "--shutdown" => shutdown = true,
            other if addr.is_none() && !other.starts_with("--") => {
                addr = Some(other.to_string());
            }
            other => panic!("unknown argument `{other}`"),
        }
    }
    let addr = addr.expect("usage: farm_client ADDR [--verb V] [--seed N] [--stats] [--shutdown]");

    let mut client = Client::connect(&addr).expect("connect to serve");
    if let Some(tenant) = tenant {
        client.set_tenant(tenant);
    }

    // Keep the default request cheap so the example doubles as a smoke
    // test; a pinned seed makes the printed result reproducible.
    // `--config` passes verb overrides as inline JSON.
    let config = match config_json {
        Some(json) => sim_rt::json::parse(&json).expect("--config must be valid JSON"),
        None if !stats && verb == "quickstart" => {
            Value::Object(vec![("samples_per_level".into(), Value::Int(40))])
        }
        None => Value::Null,
    };
    let resp = if stats {
        client.stats(config).expect("stats request")
    } else {
        let id = client
            .send_with_deadline(&verb, seed, deadline_ms, config)
            .expect("send request");
        client.wait(id).expect("request response")
    };
    println!(
        "{} {} (board {:?}, seed {:?}, {:.1} ms, trace {}{})",
        resp.status,
        resp.verb,
        resp.board,
        resp.seed,
        resp.elapsed_ms.unwrap_or(0.0),
        resp.trace.as_deref().unwrap_or("-"),
        if resp.cached == Some(true) {
            ", cached"
        } else {
            ""
        },
    );
    let render = |v: &Value| {
        if pretty {
            v.to_json_pretty()
        } else {
            v.to_json()
        }
    };
    match (&resp.result, &resp.error) {
        (Some(result), _) => println!("result: {}", render(result)),
        (None, Some(error)) => println!("error: {error}"),
        _ => {}
    }

    if shutdown {
        let ack = client.shutdown_server().expect("shutdown ack");
        println!(
            "drained: {}",
            ack.result.map_or_else(|| "?".into(), |v| render(&v))
        );
    }
    if !resp.is_ok() {
        std::process::exit(1);
    }
}
