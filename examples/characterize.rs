//! Figure 2 in miniature: sweep the 161 victim activity levels and compare
//! the hwmon channels against the ring-oscillator baseline.
//!
//! Run with: `cargo run --release --example characterize`
//! (the full 161-level sweep; pass `--quick` for a coarse sweep)

use amperebleed::characterize::{self, CharacterizeConfig};
use amperebleed::Platform;
use fpga_fabric::ring_oscillator::RoConfig;
use fpga_fabric::virus::VirusConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut platform = Platform::zcu102(7);
    platform.deploy_virus(VirusConfig::default())?;
    platform.deploy_ro_bank(RoConfig::default())?;

    let config = if quick {
        CharacterizeConfig::quick()
    } else {
        CharacterizeConfig {
            samples_per_level: 2_000,
            ..CharacterizeConfig::default()
        }
    };
    eprintln!(
        "sweeping {} levels x {} samples ...",
        config.levels.len(),
        config.samples_per_level
    );
    let report = characterize::run(&platform, &config)?;

    println!(
        "{:>7} {:>12} {:>10} {:>12} {:>10}",
        "groups", "I(mA)", "V(mV)", "P(mW)", "RO"
    );
    for row in report.rows.iter().step_by((report.rows.len() / 16).max(1)) {
        println!(
            "{:>7} {:>12.1} {:>10.2} {:>12.1} {:>10.2}",
            row.active_groups,
            row.current_ma.mean,
            row.voltage_mv.mean,
            row.power_uw.mean / 1_000.0,
            row.ro_count.as_ref().map_or(f64::NAN, |s| s.mean),
        );
    }

    println!("\nPearson correlation vs. activity level:");
    println!("  current : {:+.4}", report.pearson_current);
    println!("  power   : {:+.4}", report.pearson_power);
    println!("  voltage : {:+.4}", report.pearson_voltage);
    println!("  RO      : {:+.4}", report.pearson_ro.unwrap_or(f64::NAN));
    println!("\nper-step slopes:");
    println!(
        "  current : {:.2} mA  (~LSBs at 1 mA resolution)",
        report.fit_current.slope
    );
    println!(
        "  voltage : {:.4} LSB (1.25 mV each)",
        report.voltage_lsb_per_step()
    );
    println!(
        "  power   : {:.2} LSB (25 mW each)",
        report.power_lsb_per_step()
    );
    if let Some(ratio) = report.variation_ratio_vs_ro {
        println!("\ncurrent variation / RO variation = {ratio:.0}x (paper: 261x)");
    }
    Ok(())
}
