//! TEE workload inference — the paper's future-work question, answered on
//! the simulated platform.
//!
//! An SGX-FPGA style enclave executes confidential tasks behind logical
//! isolation; an unprivileged observer classifies which task runs from
//! hwmon current traces alone.
//!
//! Run with: `cargo run --release --example tee_attack`

use amperebleed::tee::{run, TeeAttackConfig};
use amperebleed::{Channel, CurrentSampler, Platform};
use fpga_fabric::enclave::EnclaveTask;
use zynq_soc::{PowerDomain, SimTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = TeeAttackConfig::default();
    eprintln!(
        "profiling {} enclave task types x {} traces ...",
        EnclaveTask::ALL.len(),
        config.traces_per_task
    );
    let report = run(&config)?;
    println!(
        "hold-out task-classification accuracy: {:.0}% (chance {:.0}%)",
        report.holdout_accuracy * 100.0,
        100.0 / EnclaveTask::ALL.len() as f64
    );

    // Live demonstration: watch an enclave switch workloads.
    let mut platform = Platform::zcu102(0x7EE);
    let enclave = platform.deploy_enclave()?;
    let sampler = CurrentSampler::unprivileged(&platform);
    println!("\nonline observation of a black-box enclave:");
    for (i, task) in [
        EnclaveTask::AesGcm,
        EnclaveTask::MatMul,
        EnclaveTask::Idle,
        EnclaveTask::Signature,
    ]
    .iter()
    .enumerate()
    {
        enclave.run(*task);
        let start = SimTime::from_secs(10 * (i as u64 + 1));
        let trace = sampler.capture(
            PowerDomain::FpgaLogic,
            Channel::Current,
            start,
            1_000.0 / 35.0,
            29, // ~1 s
        )?;
        let guess = report.classifier.identify(&trace)?;
        let mark = if guess == *task { "HIT " } else { "MISS" };
        println!("  [{mark}] enclave ran {task:<10} attacker inferred {guess}");
    }
    println!(
        "\nThe enclave's logical isolation (attested bitstream, private\n\
         memory) does not extend to the board's power rails."
    );
    Ok(())
}
