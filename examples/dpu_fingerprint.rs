//! DPU model fingerprinting (the Table III / Figure 3 case study).
//!
//! Offline: collect labelled current traces of known models and train a
//! random forest. Online: point the classifier at a black-box accelerator
//! and name the architecture it runs.
//!
//! Run with: `cargo run --release --example dpu_fingerprint`

use amperebleed::fingerprint::{
    collect_corpus, evaluate_grid, FingerprintConfig, Fingerprinter, SensorChannel,
};
use amperebleed::{Channel, CurrentSampler, Platform};
use dnn_models::{zoo, ModelArch};
use dpu::DpuConfig;
use zynq_soc::{PowerDomain, SimTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The six models of Figure 3.
    let models = zoo();
    let victims: Vec<&ModelArch> = [
        "mobilenet-v1",
        "squeezenet",
        "efficientnet-lite0",
        "inception-v3",
        "resnet-50",
        "vgg-19",
    ]
    .iter()
    .map(|n| models.iter().find(|m| &m.name == n).expect("in zoo"))
    .collect();

    let config = FingerprintConfig {
        traces_per_model: 10,
        capture_seconds: 3.0,
        ..FingerprintConfig::default()
    };

    eprintln!(
        "offline phase: collecting {} traces ...",
        victims.len() * config.traces_per_model
    );
    let corpus = collect_corpus(&victims, &config)?;

    eprintln!("training / cross-validating ...");
    let grid = evaluate_grid(&corpus, &config, &[1.0, 2.0, 3.0])?;
    println!("cross-validated accuracy (chance = {:.4}):", grid.chance());
    println!("{:<24} {:>8} {:>8} {:>8}", "sensor", "1s", "2s", "3s");
    for (sc, cells) in &grid.rows {
        print!("{:<24}", sc.to_string());
        for c in cells {
            print!(" {:>7.3}", c.top1);
        }
        println!();
    }

    // Online attack against a black-box accelerator.
    let fpga_current = SensorChannel {
        domain: PowerDomain::FpgaLogic,
        channel: Channel::Current,
    };
    let fingerprinter = Fingerprinter::train(&corpus, fpga_current, &config)?;
    println!("\nonline phase (black-box victims on fresh platforms):");
    for (i, victim) in victims.iter().enumerate() {
        let mut platform = Platform::zcu102(0xACE0 + i as u64);
        let dpu = platform.deploy_dpu(DpuConfig::default())?;
        dpu.load_model(victim);
        let sampler = CurrentSampler::unprivileged(&platform);
        let trace = sampler.capture(
            PowerDomain::FpgaLogic,
            Channel::Current,
            SimTime::from_ms(40),
            1_000.0 / 35.0,
            (config.capture_seconds * 1_000.0 / 35.0) as usize,
        )?;
        let guess = fingerprinter.identify(&trace)?;
        let mark = if guess == victim.name { "HIT " } else { "MISS" };
        println!("  [{mark}] true={:<22} guessed={guess}", victim.name);
    }
    Ok(())
}
